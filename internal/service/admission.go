package service

import (
	"context"
	"net/http"
	"sync"
	"time"

	"surfcomm/internal/scerr"
)

// DefaultQueueDepth is the compile-queue bound a zero Config selects:
// enough to absorb bursts without letting queued work outlive any
// reasonable client timeout.
const DefaultQueueDepth = 64

// OverloadError is a shed request: admission control or the per-client
// rate limiter refused the work. It matches scerr.ErrOverloaded
// (surfcomm.ErrOverloaded) via errors.Is and carries the HTTP status
// and the honest Retry-After hint the serving layer writes.
type OverloadError struct {
	// Status is 429 (per-client rate limit) or 503 (service-wide
	// admission shed).
	Status int
	// RetryAfter is the server's estimate of when retrying could
	// succeed — queue drain time for sheds, token refill time for rate
	// limits. Never zero: an honest hint beats an instant retry storm.
	RetryAfter time.Duration
	err        error
}

func (e *OverloadError) Error() string { return e.err.Error() }
func (e *OverloadError) Unwrap() error { return e.err }

func overload(status int, retryAfter time.Duration, format string, args ...any) *OverloadError {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	return &OverloadError{Status: status, RetryAfter: retryAfter, err: scerr.Overloaded(format, args...)}
}

// admission is the bounded compile queue: slots bounds concurrent
// compiles (the old service-wide semaphore), waiting bounds the queue
// behind them, and an EWMA of recent compile durations prices the
// queue so requests that cannot meet their deadline — or arrivals past
// the queue bound — are shed immediately instead of waiting to fail.
// Cache hits never touch it.
type admission struct {
	slots chan struct{}

	mu         sync.Mutex
	workers    int
	queueLimit int
	waiting    int
	running    int
	avgNanos   float64
	shed       uint64
	expired    uint64
}

func newAdmission(workers, queueLimit int) *admission {
	return &admission{
		slots:      make(chan struct{}, workers),
		workers:    workers,
		queueLimit: queueLimit,
	}
}

// acquire blocks until a compile slot is free. It sheds on arrival
// (ErrOverloaded, 503) when the queue is full or the caller's deadline
// is provably unmeetable, and returns ErrCanceled — without ever
// compiling — when the context expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.waiting >= a.queueLimit {
		// Queue full — but a full queue with a free slot is not overload
		// (zero-depth queues would otherwise shed everything): grab a
		// slot without waiting, shed only when that fails too.
		select {
		case a.slots <- struct{}{}:
			a.running++
			a.mu.Unlock()
			return nil
		default:
		}
		a.shed++
		retry := a.drainEstimateLocked(a.waiting)
		queued, running := a.waiting, a.running
		a.mu.Unlock()
		return overload(http.StatusServiceUnavailable, retry,
			"service: compile queue full (%d queued, %d running)", queued, running)
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := a.waitEstimateLocked(); est > 0 && time.Until(dl) < est {
			a.shed++
			retry := a.drainEstimateLocked(a.waiting)
			a.mu.Unlock()
			return overload(http.StatusServiceUnavailable, retry,
				"service: deadline %s shorter than estimated queue wait %s",
				time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond))
		}
	}
	a.waiting++
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.waiting--
		if ctx.Err() != nil {
			// Expired between the slot becoming free and us noticing:
			// still "expired in queue" — return the slot, don't compile.
			a.expired++
			a.mu.Unlock()
			<-a.slots
			return scerr.Canceled(ctx)
		}
		a.running++
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.waiting--
		a.expired++
		a.mu.Unlock()
		return scerr.Canceled(ctx)
	}
}

// release frees the slot acquire granted; elapsed > 0 feeds the
// compile-duration EWMA that prices future admission decisions.
func (a *admission) release(elapsed time.Duration) {
	<-a.slots
	a.mu.Lock()
	a.running--
	if elapsed > 0 {
		const alpha = 0.2
		if a.avgNanos == 0 {
			a.avgNanos = float64(elapsed)
		} else {
			a.avgNanos = alpha*float64(elapsed) + (1-alpha)*a.avgNanos
		}
	}
	a.mu.Unlock()
}

// waitEstimateLocked estimates how long a new arrival waits before its
// own compile finishes: everything ahead of it plus itself, spread over
// the worker slots. Zero (no history yet) disables deadline shedding —
// never guess against the client without evidence.
func (a *admission) waitEstimateLocked() time.Duration {
	if a.avgNanos == 0 {
		return 0
	}
	ahead := a.waiting + a.running + 1
	return time.Duration(a.avgNanos * float64(ahead) / float64(a.workers))
}

// drainEstimateLocked estimates when a retry could find queue room.
func (a *admission) drainEstimateLocked(queued int) time.Duration {
	if a.avgNanos == 0 {
		return time.Second
	}
	return time.Duration(a.avgNanos * float64(queued+1) / float64(a.workers))
}

// saturated reports whether a new compile would be shed right now — the
// /readyz overload signal.
func (a *admission) saturated() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting >= a.queueLimit && a.running >= a.workers
}

// AdmissionStats is a point-in-time snapshot of the admission queue.
type AdmissionStats struct {
	// Workers is the compile-slot bound; Running and Queued are the
	// current occupancy behind and in front of it.
	Workers int `json:"workers"`
	Running int `json:"running"`
	Queued  int `json:"queued"`
	// QueueLimit is the queue bound past which arrivals are shed.
	QueueLimit int `json:"queue_limit"`
	// Shed counts arrivals rejected on admission (queue full or
	// deadline unmeetable); ExpiredInQueue counts requests whose
	// context ended while waiting — both answered without compiling.
	Shed           uint64 `json:"shed"`
	ExpiredInQueue uint64 `json:"expired_in_queue"`
	// RateLimited counts requests refused by the per-client token
	// buckets (HTTP 429).
	RateLimited uint64 `json:"rate_limited"`
	// AvgCompileMillis is the EWMA compile duration pricing the queue.
	AvgCompileMillis float64 `json:"avg_compile_ms"`
}

func (a *admission) stats(rateLimited uint64) AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Workers:          a.workers,
		Running:          a.running,
		Queued:           a.waiting,
		QueueLimit:       a.queueLimit,
		Shed:             a.shed,
		ExpiredInQueue:   a.expired,
		RateLimited:      rateLimited,
		AvgCompileMillis: a.avgNanos / 1e6,
	}
}
