package service_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"testing"

	"surfcomm"
	"surfcomm/internal/service"
)

// planDigest FNV-hashes the externally visible identity of a Plan —
// the schedule metrics plus every recorded path — matching the
// facade's golden-parity convention. Two plans with equal digests
// compiled bit-identically.
func planDigest(p surfcomm.Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d/%d/%g/%d:", p.Backend, p.Circuit, p.Distance, p.Seed,
		p.Cycles, p.PhysicalQubits, p.CommOps)
	if p.Braid != nil {
		for _, e := range p.Braid.Schedule {
			fmt.Fprintf(h, "%d/%d/%d/%d/%d:", e.Op, e.Kind, e.Start, e.End, e.Factory)
			for _, n := range e.Path {
				fmt.Fprintf(h, "(%d,%d)", n.Row, n.Col)
			}
		}
	}
	if p.EPR != nil {
		fmt.Fprintf(h, "epr:%d/%d/%d/%d", p.EPR.StallCycles, p.EPR.PeakLiveEPR,
			p.EPR.TotalPairs, p.EPR.ScheduleCycles)
	}
	return h.Sum64()
}

func testQASM(t *testing.T) string {
	t.Helper()
	circ, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: 8, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := surfcomm.WriteQASM(&buf, circ); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func newService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return service.New(tc, cfg)
}

// TestCacheHitMatchesFreshCompile is the tentpole acceptance property:
// for every backend, with and without a defective device, the cached
// plan is FNV-bit-identical to an uncached compile of the same
// request, and the repeat request reports a cache hit.
func TestCacheHitMatchesFreshCompile(t *testing.T) {
	qasm := testQASM(t)
	devices := map[string]*service.DeviceSpec{
		"nodevice": nil,
		"yield":    {Preset: "random-yield", Frac: 0.02, Seed: 7},
	}
	for devName, dev := range devices {
		for _, backend := range []string{"braid", "planar", "surgery"} {
			t.Run(backend+"/"+devName, func(t *testing.T) {
				req := service.Request{QASM: qasm, Backend: backend, Device: dev, RecordSchedule: true}
				cached := newService(t, service.Config{})
				uncached := newService(t, service.Config{MaxEntries: -1})

				first, err := cached.Compile(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if first.Cached {
					t.Error("first compile should be a miss")
				}
				second, err := cached.Compile(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if !second.Cached {
					t.Error("second compile should be a hit")
				}
				fresh, err := uncached.Compile(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if fresh.Cached {
					t.Error("uncached service should always compile fresh")
				}
				fd, sd, ud := planDigest(first.Plan), planDigest(second.Plan), planDigest(fresh.Plan)
				if fd != sd || fd != ud {
					t.Errorf("plan digests diverge: first=%x hit=%x fresh=%x", fd, sd, ud)
				}
				if first.Digest != second.Digest || first.Digest != fresh.Digest {
					t.Errorf("request digests diverge: %s / %s / %s", first.Digest, second.Digest, fresh.Digest)
				}
			})
		}
	}
}

// TestSingleflightDedup pins the dedup invariant: N concurrent
// identical requests compile exactly once (1 miss, N-1 served from the
// flight or the cache), all bit-identical. Run under -race this also
// proves the cache's concurrency safety.
func TestSingleflightDedup(t *testing.T) {
	const n = 8
	svc := newService(t, service.Config{})
	req := service.Request{QASM: testQASM(t), Backend: "braid"}

	var wg sync.WaitGroup
	results := make([]service.Result, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Compile(context.Background(), req)
		}(i)
	}
	wg.Wait()

	want := planDigest(results[0].Plan)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got := planDigest(results[i].Plan); got != want {
			t.Errorf("request %d digest %x, want %x", i, got, want)
		}
	}
	st := svc.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits+st.Deduped != n-1 {
		t.Errorf("hits+deduped = %d+%d, want %d", st.Hits, st.Deduped, n-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestLRUEvictionBound pins the size bound: the cache never exceeds
// MaxEntries, evicts least-recently-used first, and an evicted key
// compiles fresh again.
func TestLRUEvictionBound(t *testing.T) {
	svc := newService(t, service.Config{MaxEntries: 2})
	qasm := testQASM(t)
	seeds := []int64{1, 2, 3}
	reqs := make([]service.Request, len(seeds))
	for i, s := range seeds {
		seed := s
		reqs[i] = service.Request{QASM: qasm, Backend: "braid", Seed: &seed}
	}
	for _, r := range reqs {
		if _, err := svc.Compile(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Entries > 2 {
		t.Errorf("entries = %d, exceeds bound 2", st.Entries)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// reqs[0] was the least recently used — it must have been evicted
	// and recompile as a miss; reqs[2] must still be cached.
	res, err := svc.Compile(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("evicted request should compile fresh")
	}
	res, err = svc.Compile(context.Background(), reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("most-recent request should still be cached")
	}
}

// TestCompileBatch pins batch semantics: request order preserved at
// any worker count, identical requests share one compile, per-request
// failures stay in their slot.
func TestCompileBatch(t *testing.T) {
	qasm := testQASM(t)
	reqs := []service.Request{
		{QASM: qasm, Backend: "braid"},
		{QASM: qasm, Backend: "planar"},
		{QASM: qasm, Backend: "nope"},
		{QASM: qasm, Backend: "braid"}, // identical to slot 0
	}
	var serial []service.Result
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		svc := newService(t, service.Config{Workers: workers})
		results := svc.CompileBatch(context.Background(), reqs)
		if len(results) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(results), len(reqs))
		}
		if results[0].Plan.Backend != "braid" || results[1].Plan.Backend != "planar" {
			t.Errorf("workers=%d: slots out of order: %q %q", workers, results[0].Plan.Backend, results[1].Plan.Backend)
		}
		if results[2].Err == nil || !errors.Is(results[2].Err, surfcomm.ErrBadConfig) {
			t.Errorf("workers=%d: slot 2 error = %v, want ErrBadConfig", workers, results[2].Err)
		}
		if results[3].Err != nil || planDigest(results[3].Plan) != planDigest(results[0].Plan) {
			t.Errorf("workers=%d: identical requests diverge", workers)
		}
		if results[0].Digest != results[3].Digest {
			t.Errorf("workers=%d: identical requests keyed differently", workers)
		}
		st := svc.Stats()
		if st.Misses != 2 {
			t.Errorf("workers=%d: misses = %d, want 2 (identical requests compile once)", workers, st.Misses)
		}
		if serial == nil {
			serial = results
			continue
		}
		for i := range results {
			if (results[i].Err == nil) != (serial[i].Err == nil) {
				t.Errorf("workers=%d: slot %d error mismatch vs serial", workers, i)
				continue
			}
			if results[i].Err == nil && planDigest(results[i].Plan) != planDigest(serial[i].Plan) {
				t.Errorf("workers=%d: slot %d plan differs from serial run", workers, i)
			}
		}
	}
}

// TestBadRequestsMatchErrBadConfig sweeps the malformed-request
// surface: every rejection classifies as ErrBadConfig and nothing
// panics.
func TestBadRequestsMatchErrBadConfig(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := testQASM(t)
	cases := map[string]service.Request{
		"empty qasm":       {Backend: "braid"},
		"garbage qasm":     {QASM: "not qasm at all"},
		"unknown backend":  {QASM: qasm, Backend: "quantum-modem"},
		"unknown device":   {QASM: qasm, Device: &service.DeviceSpec{Preset: "swiss-cheese"}},
		"negative dist":    {QASM: qasm, Distance: -3},
		"negative pp":      {QASM: qasm, PhysicalError: -1e-8},
		"bad policy":       {QASM: qasm, Policy: ptr(99)},
		"frac sans preset": {QASM: qasm, Device: &service.DeviceSpec{Frac: 0.02, Seed: 7}},
		"frac too big":     {QASM: qasm, Device: &service.DeviceSpec{Preset: "random-yield", Frac: 1.5}},
		"negative frac":    {QASM: qasm, Device: &service.DeviceSpec{Preset: "clustered", Frac: -0.1}},
	}
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := svc.Compile(context.Background(), req)
			if !errors.Is(err, surfcomm.ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if st := svc.Stats(); st.Entries != 0 {
		t.Errorf("failed compiles must not populate the cache, got %d entries", st.Entries)
	}
}

func ptr[T any](v T) *T { return &v }

// TestCanceledCompileNotCached pins the error-caching rule: a canceled
// compile reports ErrCanceled and leaves the key uncached, so the next
// request recomputes.
func TestCanceledCompileNotCached(t *testing.T) {
	svc := newService(t, service.Config{})
	req := service.Request{QASM: testQASM(t), Backend: "braid"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Compile(ctx, req); !errors.Is(err, surfcomm.ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
	if st := svc.Stats(); st.Entries != 0 {
		t.Fatalf("canceled compile cached %d entries", st.Entries)
	}
	res, err := svc.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("retry after cancellation should compile fresh")
	}
}

// TestBaseContextGovernsSharedCompiles pins the ownership rule for
// cache-shared compiles: they run under the service's base context
// (the daemon's process context), not any single request's, so
// shutdown — and only shutdown — cancels them.
func TestBaseContextGovernsSharedCompiles(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := context.WithCancel(context.Background())
	svc := service.New(tc, service.Config{BaseContext: base})
	req := service.Request{QASM: testQASM(t), Backend: "braid"}

	// A live base and a live request context compile normally.
	if _, err := svc.Compile(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// After shutdown, a fresh compile aborts with ErrCanceled even
	// though the request context is live — proof the compile runs
	// under the base context.
	shutdown()
	other := service.Request{QASM: testQASM(t), Backend: "planar"}
	if _, err := svc.Compile(context.Background(), other); !errors.Is(err, surfcomm.ErrCanceled) {
		t.Errorf("compile under canceled base = %v, want ErrCanceled", err)
	}
	// Cached plans are still served — shutdown drains, it does not
	// forget.
	res, err := svc.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("cached plan should survive base cancellation")
	}
}

// TestDigestSeparatesTargets pins cache-key hygiene: requests that
// differ in any plan-affecting knob occupy different cache lines.
func TestDigestSeparatesTargets(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := testQASM(t)
	base := service.Request{QASM: qasm, Backend: "braid"}
	variants := []service.Request{
		{QASM: qasm, Backend: "planar"},
		{QASM: qasm, Backend: "braid", Distance: 7},
		{QASM: qasm, Backend: "braid", Seed: ptr(int64(9))},
		{QASM: qasm, Backend: "braid", PhysicalError: 1e-5},
		{QASM: qasm, Backend: "braid", Device: &service.DeviceSpec{Preset: "random-yield", Frac: 0.01, Seed: 3}},
		{QASM: qasm, Backend: "braid", RecordSchedule: true},
	}
	bres, err := svc.Compile(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{bres.Digest: true}
	for i, v := range variants {
		res, err := svc.Compile(context.Background(), v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if seen[res.Digest] {
			t.Errorf("variant %d shares a digest with an earlier request", i)
		}
		seen[res.Digest] = true
	}
}

// TestDigestCanonicalizesQASM pins the other direction: textually
// different requests meaning the same compile share one cache line.
func TestDigestCanonicalizesQASM(t *testing.T) {
	svc := newService(t, service.Config{})
	qasm := testQASM(t)
	first, err := svc.Compile(context.Background(), service.Request{QASM: qasm})
	if err != nil {
		t.Fatal(err)
	}
	// Trailing blank lines leave the parsed circuit unchanged, so the
	// digest must not move.
	second, err := svc.Compile(context.Background(), service.Request{QASM: qasm + "\n\n  \n"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Digest != second.Digest {
		t.Errorf("canonically equal requests keyed differently: %s vs %s", first.Digest, second.Digest)
	}
	if !second.Cached {
		t.Error("canonically equal request should hit the cache")
	}
}
