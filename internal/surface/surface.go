// Package surface models the error-correction layer of the toolchain
// (paper §2.3, §4.3): the surface-code logical error model, code
// distance selection from the physical-to-logical reliability gap, the
// physical footprint of planar and double-defect logical tiles, the
// syndrome-measurement cycle time on superconducting hardware, and
// ancilla-factory provisioning.
//
// Everything here is closed-form; the communication behavior that
// distinguishes the two encodings lives in the braid and teleport
// simulators.
package surface

import (
	"fmt"
	"math"
)

// Technology captures the physical device characteristics the toolflow
// is parameterized by (paper Fig. 4 "technology characteristics").
type Technology struct {
	// PhysicalErrorRate is p_P, the per-operation physical error rate.
	// The paper sweeps 1e-8 (future optimistic) to 1e-3 (current).
	PhysicalErrorRate float64

	// Threshold is the surface-code threshold error rate p_th below
	// which increasing distance suppresses logical errors (~1e-2 for
	// superconducting circuits).
	Threshold float64

	// Prefactor is the A in p_L(d) = A·(p_P/p_th)^((d+1)/2).
	Prefactor float64

	// Gate1Q, Gate2Q, Meas are physical operation latencies in seconds.
	// The paper's evaluations assume single-qubit operations 10× faster
	// than two-qubit operations on superconductors.
	Gate1Q float64
	Gate2Q float64
	Meas   float64
}

// Superconducting returns the paper's baseline superconducting
// technology at the given physical error rate: 10-100 MHz-class gates
// with 1q:2q = 1:10.
func Superconducting(physicalErrorRate float64) Technology {
	return Technology{
		PhysicalErrorRate: physicalErrorRate,
		Threshold:         1e-2,
		Prefactor:         0.03,
		Gate1Q:            10e-9,
		Gate2Q:            100e-9,
		Meas:              100e-9,
	}
}

// Validate checks the technology parameters are physical.
func (t Technology) Validate() error {
	switch {
	case t.PhysicalErrorRate <= 0:
		return fmt.Errorf("surface: physical error rate must be positive, got %g", t.PhysicalErrorRate)
	case t.Threshold <= 0:
		return fmt.Errorf("surface: threshold must be positive, got %g", t.Threshold)
	case t.Prefactor <= 0:
		return fmt.Errorf("surface: prefactor must be positive, got %g", t.Prefactor)
	case t.Gate1Q <= 0 || t.Gate2Q <= 0 || t.Meas <= 0:
		return fmt.Errorf("surface: gate times must be positive")
	}
	return nil
}

// LogicalErrorPerCycle returns p_L(d): the probability that a
// distance-d logical qubit suffers a logical error per logical
// operation cycle, using Fowler's empirical fit
// p_L = A·(p_P/p_th)^((d+1)/2).
func (t Technology) LogicalErrorPerCycle(d int) float64 {
	ratio := t.PhysicalErrorRate / t.Threshold
	return t.Prefactor * math.Pow(ratio, float64(d+1)/2)
}

// MaxDistance bounds the distance search; distance-1000 codes are far
// beyond any plotted design point and indicate an uncorrectable regime.
const MaxDistance = 999

// RequiredDistance returns the smallest odd code distance d such that a
// computation of totalOps logical operations meets the target success
// probability: totalOps · p_L(d) ≤ 1 − successTarget. The paper uses
// successTarget = 0.5 ("a typical correctness target").
//
// It fails when the device is at or above threshold (no distance
// suppresses errors) or when the demanded gap exceeds MaxDistance.
func (t Technology) RequiredDistance(totalOps, successTarget float64) (int, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if totalOps < 1 {
		totalOps = 1
	}
	if successTarget <= 0 || successTarget >= 1 {
		return 0, fmt.Errorf("surface: success target must be in (0,1), got %g", successTarget)
	}
	if t.PhysicalErrorRate >= t.Threshold {
		return 0, fmt.Errorf("surface: physical error rate %g at/above threshold %g — uncorrectable",
			t.PhysicalErrorRate, t.Threshold)
	}
	budget := (1 - successTarget) / totalOps
	for d := 3; d <= MaxDistance; d += 2 {
		if t.LogicalErrorPerCycle(d) <= budget {
			return d, nil
		}
	}
	return 0, fmt.Errorf("surface: no distance ≤ %d achieves per-op error %g at p_P=%g",
		MaxDistance, budget, t.PhysicalErrorRate)
}

// SyndromeCycleTime returns the duration of one surface-code error
// correction cycle: the ancillas interact with their four data
// neighbors (4 two-qubit gates), are basis-rotated (2 single-qubit
// gates), measured, and re-initialized (costed as a measurement).
func (t Technology) SyndromeCycleTime() float64 {
	return 4*t.Gate2Q + 2*t.Gate1Q + 2*t.Meas
}

// LogicalCycleTime returns the duration of one logical operation cycle
// at distance d: d rounds of syndrome measurement (errors must be
// tracked for d rounds before a logical operation commits).
func (t Technology) LogicalCycleTime(d int) float64 {
	return float64(d) * t.SyndromeCycleTime()
}

// PlanarTileQubits returns the physical qubits of one planar logical
// tile at distance d: a (2d−1)×(2d−1) lattice of alternating data and
// syndrome qubits (paper Fig. 1a).
func PlanarTileQubits(d int) int {
	side := 2*d - 1
	return side * side
}

// DoubleDefectTileQubits returns the physical qubits of one
// double-defect logical tile at distance d: the defect pair needs a
// (4d−1)×(2d−1) patch of the monolithic lattice — defect circumference
// and separation both scale with d (paper Fig. 1b). The planar tile is
// smaller at every distance, the paper's headline space advantage.
func DoubleDefectTileQubits(d int) int {
	return (4*d - 1) * (2*d - 1)
}

// ChannelWidthQubits returns the physical width of one braid channel
// between double-defect tiles: a braid needs a d/2-wide corridor of
// lattice to pass without reducing the code distance.
func ChannelWidthQubits(d int) int {
	w := d / 2
	if w < 1 {
		w = 1
	}
	return w
}
