package surface

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSuperconductingDefaults(t *testing.T) {
	tech := Superconducting(1e-5)
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	if tech.Gate2Q != 10*tech.Gate1Q {
		t.Errorf("paper assumes 1q ops 10x faster than 2q: %g vs %g", tech.Gate1Q, tech.Gate2Q)
	}
}

func TestValidateRejectsBadTech(t *testing.T) {
	bad := []Technology{
		{PhysicalErrorRate: 0, Threshold: 1e-2, Prefactor: 0.03, Gate1Q: 1, Gate2Q: 1, Meas: 1},
		{PhysicalErrorRate: 1e-3, Threshold: 0, Prefactor: 0.03, Gate1Q: 1, Gate2Q: 1, Meas: 1},
		{PhysicalErrorRate: 1e-3, Threshold: 1e-2, Prefactor: 0, Gate1Q: 1, Gate2Q: 1, Meas: 1},
		{PhysicalErrorRate: 1e-3, Threshold: 1e-2, Prefactor: 0.03, Gate1Q: 0, Gate2Q: 1, Meas: 1},
	}
	for i, tech := range bad {
		if err := tech.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestLogicalErrorDecreasesWithDistance(t *testing.T) {
	tech := Superconducting(1e-4)
	prev := math.Inf(1)
	for d := 3; d <= 31; d += 2 {
		pl := tech.LogicalErrorPerCycle(d)
		if pl >= prev {
			t.Fatalf("p_L not decreasing at d=%d: %g >= %g", d, pl, prev)
		}
		prev = pl
	}
}

func TestLogicalErrorGrowsAboveThreshold(t *testing.T) {
	tech := Superconducting(5e-2) // above threshold
	if tech.LogicalErrorPerCycle(11) <= tech.LogicalErrorPerCycle(3) {
		t.Error("above threshold, more distance should hurt")
	}
}

func TestRequiredDistanceKnownValues(t *testing.T) {
	// p_P = 1e-4, ratio = 1e-2: p_L(d) = 0.03 * 1e-(d+1).
	tech := Superconducting(1e-4)
	cases := []struct {
		ops  float64
		want int
	}{
		{1, 3},     // budget 0.5: d=3 gives 3e-6? d=3: 0.03*1e-4=3e-6 <= 0.5 -> 3
		{1e6, 5},   // budget 5e-7: d=3 gives 3e-6 (no), d=5 gives 3e-8 (yes)
		{1e10, 9},  // budget 5e-11: d=7 -> 3e-10 no, d=9 -> 3e-12 yes
		{1e20, 19}, // budget 5e-21: d=19 -> 3e-22 yes, d=17 -> 3e-20 no
	}
	for _, c := range cases {
		d, err := tech.RequiredDistance(c.ops, 0.5)
		if err != nil {
			t.Fatalf("ops=%g: %v", c.ops, err)
		}
		if d != c.want {
			t.Errorf("ops=%g: d=%d, want %d", c.ops, d, c.want)
		}
	}
}

func TestRequiredDistanceMonotoneInOps(t *testing.T) {
	tech := Superconducting(1e-5)
	prev := 0
	for _, ops := range []float64{1, 1e3, 1e6, 1e9, 1e12, 1e15, 1e18, 1e21, 1e24} {
		d, err := tech.RequiredDistance(ops, 0.5)
		if err != nil {
			t.Fatalf("ops=%g: %v", ops, err)
		}
		if d < prev {
			t.Errorf("distance decreased at ops=%g: %d < %d", ops, d, prev)
		}
		prev = d
	}
}

func TestRequiredDistanceMonotoneInErrorRate(t *testing.T) {
	// Faultier devices need at least as much distance.
	prev := MaxDistance + 1
	for _, p := range []float64{5e-3, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8} {
		d, err := Superconducting(p).RequiredDistance(1e9, 0.5)
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		if d > prev {
			t.Errorf("cleaner device needs more distance at p=%g: %d > %d", p, d, prev)
		}
		prev = d
	}
}

func TestRequiredDistanceAboveThresholdFails(t *testing.T) {
	if _, err := Superconducting(2e-2).RequiredDistance(100, 0.5); err == nil {
		t.Error("above-threshold device should be uncorrectable")
	}
}

func TestRequiredDistanceRejectsBadTarget(t *testing.T) {
	tech := Superconducting(1e-5)
	for _, target := range []float64{0, 1, -0.3, 1.5} {
		if _, err := tech.RequiredDistance(100, target); err == nil {
			t.Errorf("target %g should be rejected", target)
		}
	}
}

func TestRequiredDistanceOddQuick(t *testing.T) {
	f := func(expRaw uint8, opsExp uint8) bool {
		p := math.Pow(10, -(3 + float64(expRaw%6))) // 1e-3..1e-8
		ops := math.Pow(10, float64(opsExp%20))
		d, err := Superconducting(p).RequiredDistance(ops, 0.5)
		if err != nil {
			return false
		}
		// Distance is odd, >= 3, and d-2 does not suffice.
		if d%2 != 1 || d < 3 {
			return false
		}
		tech := Superconducting(p)
		budget := 0.5 / ops
		if d > 3 && tech.LogicalErrorPerCycle(d-2) <= budget {
			return false
		}
		return tech.LogicalErrorPerCycle(d) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTileGeometry(t *testing.T) {
	if got := PlanarTileQubits(3); got != 25 {
		t.Errorf("planar d=3 tile = %d, want 25", got)
	}
	if got := DoubleDefectTileQubits(3); got != 55 {
		t.Errorf("double-defect d=3 tile = %d, want 55", got)
	}
	for d := 3; d <= 25; d += 2 {
		if PlanarTileQubits(d) >= DoubleDefectTileQubits(d) {
			t.Errorf("d=%d: planar tile %d should be smaller than double-defect %d",
				d, PlanarTileQubits(d), DoubleDefectTileQubits(d))
		}
	}
}

func TestChannelWidth(t *testing.T) {
	if ChannelWidthQubits(1) != 1 {
		t.Error("minimum channel width is 1")
	}
	if ChannelWidthQubits(8) != 4 {
		t.Errorf("channel width d=8 = %d, want 4", ChannelWidthQubits(8))
	}
}

func TestCycleTimes(t *testing.T) {
	tech := Superconducting(1e-5)
	sc := tech.SyndromeCycleTime()
	want := 4*tech.Gate2Q + 2*tech.Gate1Q + 2*tech.Meas
	if sc != want {
		t.Errorf("syndrome cycle = %g, want %g", sc, want)
	}
	if tech.LogicalCycleTime(5) != 5*sc {
		t.Error("logical cycle should be d syndrome rounds")
	}
}

func TestFactoryBudgetRatio(t *testing.T) {
	if got := FactoryBudget(400); got != 100 {
		t.Errorf("budget(400) = %d, want 100 (1:4 ratio)", got)
	}
	if got := FactoryBudget(2); got != MagicFactoryLogicalQubits {
		t.Errorf("tiny programs still get one magic factory, got %d", got)
	}
}

func TestProvisionDoubleDefectSkipsEPR(t *testing.T) {
	p := ProvisionFactories(400, false)
	if p.EPRFactories != 0 {
		t.Errorf("double-defect provisioning should have no EPR factories, got %d", p.EPRFactories)
	}
	if p.MagicFactories != 100/MagicFactoryLogicalQubits {
		t.Errorf("magic factories = %d, want %d", p.MagicFactories, 100/MagicFactoryLogicalQubits)
	}
	if p.LogicalQubits != p.MagicFactories*MagicFactoryLogicalQubits {
		t.Error("footprint accounting inconsistent")
	}
}

func TestProvisionPlanarHasBoth(t *testing.T) {
	p := ProvisionFactories(400, true)
	if p.MagicFactories < 1 || p.EPRFactories < 1 {
		t.Errorf("planar provisioning needs both species: %+v", p)
	}
	if p.LogicalQubits > FactoryBudget(400)+MagicFactoryLogicalQubits+EPRFactoryLogicalQubits {
		t.Errorf("footprint %d wildly exceeds budget %d", p.LogicalQubits, FactoryBudget(400))
	}
}

func TestProvisionMinimums(t *testing.T) {
	p := ProvisionFactories(1, true)
	if p.MagicFactories < 1 || p.EPRFactories < 1 {
		t.Errorf("minimum provisioning violated: %+v", p)
	}
}
