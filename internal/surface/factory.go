package surface

import "math"

// Factory provisioning (paper §4.3): dedicated regions of the
// architecture continuously prepare the logical ancillas consumed by
// the program — magic states for T gates, EPR pairs for teleportation.

// MagicFactoryLogicalQubits is the footprint of one magic-state
// distillation factory in logical qubits (the paper's 12-encoded-qubit
// figure from Jones et al.).
const MagicFactoryLogicalQubits = 12

// EPRFactoryLogicalQubits is the footprint of one EPR-pair generation
// factory in logical qubits. EPR generation is a single Bell-pair
// preparation plus purification stage — far cheaper than distillation;
// we provision a 4-logical-qubit pipeline per factory.
const EPRFactoryLogicalQubits = 4

// MagicStateLatencyCycles returns the logical cycles one 15-to-1
// distillation round takes; a factory pipeline emits roughly one state
// per round.
func MagicStateLatencyCycles() int { return 10 }

// AncillaDataRatio is the paper's empirical space-time balance: one
// logical ancilla-factory qubit provisioned per four data qubits
// ("we have found that a good space-time balance is achieved with a
// 1:4 ancilla-to-data ratio", §4.3).
const AncillaDataRatio = 4

// FactoryBudget returns the number of logical qubits reserved for
// ancilla factories for a program with dataQubits logical data qubits.
func FactoryBudget(dataQubits int) int {
	b := (dataQubits + AncillaDataRatio - 1) / AncillaDataRatio
	if b < MagicFactoryLogicalQubits {
		// Always provision at least one full magic-state factory; a
		// program without T gates still needs state injection paths.
		b = MagicFactoryLogicalQubits
	}
	return b
}

// Provision splits a factory budget into whole factories for the two
// ancilla species. Planar architectures need both kinds; double-defect
// architectures set needEPR=false and spend the full budget on magic
// states (braids replace teleportation, paper §4.5).
type Provision struct {
	MagicFactories int
	EPRFactories   int
	LogicalQubits  int // total footprint actually consumed
}

// ProvisionFactories allocates whole factories within the budget for
// dataQubits of program data.
func ProvisionFactories(dataQubits int, needEPR bool) Provision {
	budget := FactoryBudget(dataQubits)
	p := Provision{}
	if !needEPR {
		p.MagicFactories = budget / MagicFactoryLogicalQubits
		if p.MagicFactories < 1 {
			p.MagicFactories = 1
		}
		p.LogicalQubits = p.MagicFactories * MagicFactoryLogicalQubits
		return p
	}
	// Split the budget: distillation is ~3× the footprint per factory,
	// and T traffic dominates EPR traffic in magnitude per op, so give
	// magic states 2/3 of the budget and EPR pipelines 1/3.
	magicBudget := budget * 2 / 3
	eprBudget := budget - magicBudget
	p.MagicFactories = int(math.Max(1, float64(magicBudget/MagicFactoryLogicalQubits)))
	p.EPRFactories = int(math.Max(1, float64(eprBudget/EPRFactoryLogicalQubits)))
	p.LogicalQubits = p.MagicFactories*MagicFactoryLogicalQubits + p.EPRFactories*EPRFactoryLogicalQubits
	return p
}
