// Package ufdecoder implements the union-find decoder (Delfosse &
// Nickerson's almost-linear-time decoder): defect-seeded clusters grow
// in half-edge steps over a detector graph, merging through a
// path-compressed union-find until every cluster has even parity (or
// touches a boundary), then a peeling pass over each cluster's grown
// spanning forest reads off the correction. It registers itself as the
// "unionfind" decoder.Strategy: slightly less accurate than matching,
// but near-linear in the defect count where matching is quadratic —
// the raw-speed strategy for large distances and real-time streaming.
//
// The detector graph is constructed once per (distance, error-model)
// and reused across syndrome batches (the stim+pymatching workflow);
// per-solver scratch is stamp-reset, so steady-state decoding
// allocates nothing.
package ufdecoder

import (
	"surfcomm/internal/scerr"
)

// Graph is an immutable detector graph: nodes are stabilizer checks
// (plus optional virtual boundary nodes), edges are error mechanisms
// carrying the data-qubit observable they flip (or -1 for pure
// measurement errors). It is safe for concurrent read-only use; each
// solver brings its own mutable scratch.
type Graph struct {
	nodes    int
	checks   int // nodes that carry syndrome bits (boundary nodes sit above)
	boundary []bool
	hasBnd   bool

	edgeU   []int32
	edgeV   []int32
	edgeObs []int32
	edgeW   []int16 // integer weight; an edge is fully grown at 2×weight half-steps

	// CSR adjacency: edges incident to node v are adj[adjOff[v]:adjOff[v+1]].
	adjOff []int32
	adj    []int32

	maxObs int32 // highest observable index (correction length - 1)
}

// Nodes returns the node count (checks plus boundary nodes).
func (g *Graph) Nodes() int { return g.nodes }

// Checks returns the number of syndrome-carrying nodes; syndrome/change
// bit i maps to node i.
func (g *Graph) Checks() int { return g.checks }

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.edgeU) }

// HasBoundary reports whether the graph has any boundary node (an odd
// defect set is only decodable when it does).
func (g *Graph) HasBoundary() bool { return g.hasBnd }

// Builder assembles a detector graph. Check nodes are 0..checks-1;
// AddBoundary appends virtual boundary nodes above them.
type Builder struct {
	checks   int
	boundary int
	edges    []bedge
	err      error
}

type bedge struct {
	u, v int32
	obs  int32
	w    int16
}

// NewBuilder starts a graph over the given number of check nodes.
func NewBuilder(checks int) *Builder {
	b := &Builder{checks: checks}
	if checks < 1 {
		b.err = scerr.BadConfig("ufdecoder: need at least one check node, got %d", checks)
	}
	return b
}

// AddBoundary appends a virtual boundary node and returns its id.
// Clusters touching a boundary node are neutral: unpaired defects
// resolve into it.
func (b *Builder) AddBoundary() int {
	id := b.checks + b.boundary
	b.boundary++
	return id
}

// AddEdge connects nodes u and v with an error mechanism flipping
// observable obs (-1 for none, e.g. a measurement error) at integer
// weight w >= 1.
func (b *Builder) AddEdge(u, v, obs, w int) {
	if b.err != nil {
		return
	}
	n := b.checks + b.boundary
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		b.err = scerr.BadConfig("ufdecoder: bad edge (%d,%d) over %d nodes", u, v, n)
		return
	}
	if obs < -1 {
		b.err = scerr.BadConfig("ufdecoder: bad observable %d", obs)
		return
	}
	// 2×w (the full-support threshold) must fit in int16.
	if w < 1 || w >= 1<<14 {
		b.err = scerr.BadConfig("ufdecoder: edge weight %d outside [1, 2^14)", w)
		return
	}
	b.edges = append(b.edges, bedge{int32(u), int32(v), int32(obs), int16(w)})
}

// Build finalizes the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.edges) == 0 {
		return nil, scerr.BadConfig("ufdecoder: graph has no edges")
	}
	n := b.checks + b.boundary
	g := &Graph{
		nodes:    n,
		checks:   b.checks,
		boundary: make([]bool, n),
		hasBnd:   b.boundary > 0,
		edgeU:    make([]int32, len(b.edges)),
		edgeV:    make([]int32, len(b.edges)),
		edgeObs:  make([]int32, len(b.edges)),
		edgeW:    make([]int16, len(b.edges)),
		adjOff:   make([]int32, n+1),
		adj:      make([]int32, 2*len(b.edges)),
		maxObs:   -1,
	}
	for i := b.checks; i < n; i++ {
		g.boundary[i] = true
	}
	deg := make([]int32, n)
	for i, e := range b.edges {
		g.edgeU[i], g.edgeV[i], g.edgeObs[i], g.edgeW[i] = e.u, e.v, e.obs, e.w
		if e.obs > g.maxObs {
			g.maxObs = e.obs
		}
		deg[e.u]++
		deg[e.v]++
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		g.adjOff[v] = off
		off += deg[v]
	}
	g.adjOff[n] = off
	fill := make([]int32, n)
	copy(fill, g.adjOff[:n])
	for i, e := range b.edges {
		g.adj[fill[e.u]] = int32(i)
		fill[e.u]++
		g.adj[fill[e.v]] = int32(i)
		fill[e.v]++
	}
	return g, nil
}

// NewToric builds the single-round detector graph of the distance-d
// toric code's Z-check sector: one node per plaquette, one unit-weight
// edge per data qubit, matching the adjacency of decoder.Lattice
// (horizontal edge h(r,c) separates plaquettes (r-1,c) and (r,c);
// vertical edge v(r,c) separates (r,c-1) and (r,c); all arithmetic mod
// d). Edge observables are the lattice's data-qubit indices. The torus
// has no boundary.
func NewToric(d int) (*Graph, error) {
	if d < 3 || d%2 == 0 {
		return nil, scerr.BadConfig("ufdecoder: distance must be odd and >= 3, got %d", d)
	}
	b := NewBuilder(d * d)
	node := func(r, c int) int { return ((r+d)%d)*d + (c+d)%d }
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			// h(r,c) = r*d + c
			b.AddEdge(node(r-1, c), node(r, c), r*d+c, 1)
			// v(r,c) = d² + r*d + c
			b.AddEdge(node(r, c-1), node(r, c), d*d+r*d+c, 1)
		}
	}
	return b.Build()
}

// NewToricHistory builds the space-time detector graph for `rounds`
// syndrome-measurement rounds of the distance-d toric code: node
// (t, i) = t*d² + i, each round carrying the spatial edges of NewToric
// (observable = data qubit, shared across rounds), plus unit-weight
// temporal edges (t,i)–(t+1,i) with no observable (a measurement
// error flips a check's reading in consecutive change rounds but no
// data qubit). The volume is closed — the harness measures the final
// round perfectly — so there is no time boundary.
func NewToricHistory(d, rounds int) (*Graph, error) {
	if d < 3 || d%2 == 0 {
		return nil, scerr.BadConfig("ufdecoder: distance must be odd and >= 3, got %d", d)
	}
	if rounds < 1 {
		return nil, scerr.BadConfig("ufdecoder: need at least one round, got %d", rounds)
	}
	checks := d * d
	b := NewBuilder(rounds * checks)
	for t := 0; t < rounds; t++ {
		base := t * checks
		node := func(r, c int) int { return base + ((r+d)%d)*d + (c+d)%d }
		for r := 0; r < d; r++ {
			for c := 0; c < d; c++ {
				b.AddEdge(node(r-1, c), node(r, c), r*d+c, 1)
				b.AddEdge(node(r, c-1), node(r, c), checks+r*d+c, 1)
			}
		}
		if t+1 < rounds {
			for i := 0; i < checks; i++ {
				b.AddEdge(base+i, base+checks+i, -1, 1)
			}
		}
	}
	return b.Build()
}
