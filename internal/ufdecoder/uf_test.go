package ufdecoder

import (
	"errors"
	"math/rand"
	"testing"

	"surfcomm/internal/decoder"
	"surfcomm/internal/scerr"
)

func lattice(t *testing.T, d int) *decoder.Lattice {
	t.Helper()
	l, err := decoder.NewLattice(d)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestUFClearsSyndrome is the core validity property: for random error
// patterns at several distances and rates, the union-find correction
// must clear the syndrome exactly (logical success is statistical;
// syndrome clearing is not).
func TestUFClearsSyndrome(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{3, 5, 7, 9, 13} {
		l := lattice(t, d)
		s := Strategy().NewSolver(l)
		errs := l.NewErrorPattern()
		correction := l.NewErrorPattern()
		combined := l.NewErrorPattern()
		for trial := 0; trial < 200; trial++ {
			p := []float64{0.01, 0.05, 0.12, 0.25}[trial%4]
			for q := range errs {
				errs[q] = rng.Float64() < p
			}
			syndrome := l.Syndrome(errs)
			if err := s.Decode(correction, syndrome); err != nil {
				t.Fatalf("d=%d trial=%d: %v", d, trial, err)
			}
			for q := range combined {
				combined[q] = errs[q] != correction[q]
			}
			for i, hot := range l.Syndrome(combined) {
				if hot {
					t.Fatalf("d=%d trial=%d: residual defect at plaquette %d", d, trial, i)
				}
			}
		}
	}
}

// TestUFHistoryMonteCarlo runs the space-time harness under the
// union-find strategy: the harness itself panics on any residual
// defect, so a clean pass proves the space-time peel is sound.
func TestUFHistoryMonteCarlo(t *testing.T) {
	for _, c := range []struct {
		d, rounds int
		p, q      float64
	}{
		{3, 3, 0.02, 0.01},
		{5, 5, 0.03, 0.02},
		{7, 4, 0.04, 0.03},
	} {
		mc := &decoder.HistoryMonteCarlo{
			Lattice: lattice(t, c.d),
			Rounds:  c.rounds,
			Rng:     rand.New(rand.NewSource(21)),
			Config:  decoder.Config{Workers: 2, Strategy: Strategy()},
		}
		if _, err := mc.Run(c.p, c.q, 200); err != nil {
			t.Fatalf("d=%d rounds=%d: %v", c.d, c.rounds, err)
		}
	}
}

// TestUFGoldenFailureCounts pins the union-find failure counts at the
// MWPM golden configurations, at several worker counts: the union-find
// decode is deterministic, so these are exact — any drift means the
// algorithm changed.
func TestUFGoldenFailureCounts(t *testing.T) {
	cases := []struct {
		d        int
		p        float64
		trials   int
		seed     int64
		failures int
	}{
		{3, 0.03, 400, 7, 12},
		{5, 0.05, 300, 11, 18},
		{7, 0.08, 200, 3, 29},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			mc := &decoder.MonteCarlo{
				Lattice: lattice(t, c.d),
				Rng:     rand.New(rand.NewSource(c.seed)),
				Config:  decoder.Config{Workers: workers, Strategy: Strategy()},
			}
			r, err := mc.Run(c.p, c.trials)
			if err != nil {
				t.Fatal(err)
			}
			if r.Failures != c.failures {
				t.Errorf("d=%d p=%g workers=%d: %d failures, want %d",
					c.d, c.p, workers, r.Failures, c.failures)
			}
		}
	}
}

// TestUFStatisticallyConsistentWithMWPM is the acceptance-criterion
// parity test: at the golden (d, p, trials, seed) cells the union-find
// failure count must sit within a pinned tolerance of the MWPM golden
// count. Union-find is an approximation of matching, so equality is
// not expected — but the counts are binomial with σ ≈ √failures, and a
// decoder that drifts past ~4σ (plus the systematic accuracy gap,
// which grows with the failure count) is broken, not approximate.
func TestUFStatisticallyConsistentWithMWPM(t *testing.T) {
	cases := []struct {
		d      int
		p      float64
		trials int
		seed   int64
		mwpm   int // pinned MWPM goldens from internal/decoder golden_test
		tol    int // pinned tolerance: ~4σ + systematic margin
	}{
		{3, 0.03, 400, 7, 10, 14},
		{5, 0.05, 300, 11, 19, 18},
		{7, 0.08, 200, 3, 42, 27},
	}
	for _, c := range cases {
		mc := &decoder.MonteCarlo{
			Lattice: lattice(t, c.d),
			Rng:     rand.New(rand.NewSource(c.seed)),
			Config:  decoder.Config{Workers: 1, Strategy: Strategy()},
		}
		r, err := mc.Run(c.p, c.trials)
		if err != nil {
			t.Fatal(err)
		}
		diff := r.Failures - c.mwpm
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("d=%d p=%g: union-find %d failures vs MWPM %d (|Δ|=%d > tol %d)",
				c.d, c.p, r.Failures, c.mwpm, diff, c.tol)
		}
	}
}

// TestUFSuppressionBelowThreshold: union-find must preserve the
// exponential suppression the toolflow consumes, even with its
// slightly lower threshold.
func TestUFSuppressionBelowThreshold(t *testing.T) {
	const p = 0.03
	const trials = 3000
	rates := map[int]float64{}
	for _, d := range []int{3, 5, 7} {
		mc := &decoder.MonteCarlo{
			Lattice: lattice(t, d),
			Rng:     rand.New(rand.NewSource(7)),
			Config:  decoder.Config{Strategy: Strategy()},
		}
		r, err := mc.Run(p, trials)
		if err != nil {
			t.Fatal(err)
		}
		rates[d] = r.LogicalRate
	}
	if !(rates[3] > rates[5] && rates[5] > rates[7]) {
		t.Errorf("suppression violated below threshold: d3=%.4f d5=%.4f d7=%.4f",
			rates[3], rates[5], rates[7])
	}
}

// TestUFOddDefectsNeedBoundary: an odd defect set on the (boundaryless)
// torus is undecodable and must surface as ErrBadConfig, not a hang or
// a bogus correction.
func TestUFOddDefectsNeedBoundary(t *testing.T) {
	l := lattice(t, 5)
	s := Strategy().NewSolver(l)
	syndrome := make([]bool, l.Checks())
	syndrome[7] = true
	correction := l.NewErrorPattern()
	if err := s.Decode(correction, syndrome); !errors.Is(err, scerr.ErrBadConfig) {
		t.Errorf("odd defect count: got %v, want ErrBadConfig", err)
	}
}

// TestUFBoundaryAbsorbsDefects exercises the boundary-aware path the
// torus never hits: on a 1×n path graph with boundary nodes at both
// ends, a single defect must resolve through its nearest boundary.
func TestUFBoundaryAbsorbsDefects(t *testing.T) {
	// Path: B0 -e0- c0 -e1- c1 -e2- c2 -e3- B1, observables 0..3.
	b := NewBuilder(3)
	left := b.AddBoundary()
	right := b.AddBoundary()
	b.AddEdge(left, 0, 0, 1)
	b.AddEdge(0, 1, 1, 1)
	b.AddEdge(1, 2, 2, 1)
	b.AddEdge(2, right, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasBoundary() {
		t.Fatal("graph should report a boundary")
	}
	gs := NewGraphSolver(g)
	correction := make(decoder.ErrorPattern, 4)

	// A defect at c0 should flip only edge 0 (one step to the left
	// boundary), not walk the long way right.
	if err := gs.Decode(correction, []bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, false}
	for i, w := range want {
		if correction[i] != w {
			t.Errorf("single defect at c0: correction[%d]=%v, want %v (%v)", i, correction[i], w, correction)
			break
		}
	}

	// Two adjacent defects pair with each other through e1.
	if err := gs.Decode(correction, []bool{true, true, false}); err != nil {
		t.Fatal(err)
	}
	want = []bool{false, true, false, false}
	for i, w := range want {
		if correction[i] != w {
			t.Errorf("adjacent pair: correction[%d]=%v, want %v (%v)", i, correction[i], w, correction)
			break
		}
	}
}

// TestUFWorkOpsDeterministic: the same decode sequence must produce
// identical op counts (they feed the committed BENCH artifact).
func TestUFWorkOpsDeterministic(t *testing.T) {
	run := func() uint64 {
		mc := &decoder.MonteCarlo{
			Lattice: lattice(t, 7),
			Rng:     rand.New(rand.NewSource(5)),
			Config:  decoder.Config{Workers: 3, Strategy: Strategy()},
		}
		r, err := mc.Run(0.06, 300)
		if err != nil {
			t.Fatal(err)
		}
		return r.WorkOps
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Errorf("work ops not deterministic: %d vs %d", a, b)
	}
}

// TestUFZeroAllocSteadyState: with a warmed solver, spatial and
// space-time decodes must not allocate — the streaming endpoint's
// per-round path runs through exactly this code.
func TestUFZeroAllocSteadyState(t *testing.T) {
	l := lattice(t, 9)
	s := Strategy().NewSolver(l)
	rng := rand.New(rand.NewSource(3))
	errs := l.NewErrorPattern()
	for q := range errs {
		errs[q] = rng.Float64() < 0.08
	}
	syndrome := l.Syndrome(errs)
	correction := l.NewErrorPattern()
	if err := s.Decode(correction, syndrome); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Decode(correction, syndrome); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("spatial decode allocates %.1f times, want 0", allocs)
	}

	const rounds = 4
	changes := make([]bool, rounds*l.Checks())
	// A change volume with per-round even parity: two changes per round.
	for tr := 0; tr < rounds; tr++ {
		changes[tr*l.Checks()+tr] = true
		changes[tr*l.Checks()+tr+11] = true
	}
	if err := s.DecodeHistory(correction, changes, rounds); err != nil { // warm
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := s.DecodeHistory(correction, changes, rounds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("space-time decode allocates %.1f times, want 0", allocs)
	}
}

// TestUFCheaperThanMWPMAtScale is the crossover claim in miniature: at
// a large distance and high defect density, union-find's deterministic
// work-op count must undercut the matcher's (candidate enumeration
// alone is quadratic in defects). The committed BENCH_decode.json
// records the full curve; this guards the direction.
func TestUFCheaperThanMWPMAtScale(t *testing.T) {
	const d, p, trials = 17, 0.08, 60
	ops := map[string]uint64{}
	for name, s := range map[string]decoder.Strategy{"mwpm": nil, "unionfind": Strategy()} {
		mc := &decoder.MonteCarlo{
			Lattice: lattice(t, d),
			Rng:     rand.New(rand.NewSource(13)),
			Config:  decoder.Config{Workers: 1, Strategy: s},
		}
		r, err := mc.Run(p, trials)
		if err != nil {
			t.Fatal(err)
		}
		ops[name] = r.WorkOps
	}
	if ops["unionfind"] >= ops["mwpm"] {
		t.Errorf("union-find should be cheaper at d=%d: uf=%d mwpm=%d", d, ops["unionfind"], ops["mwpm"])
	}
}
