package ufdecoder

import (
	"surfcomm/internal/decoder"
	"surfcomm/internal/scerr"
)

// strategy registers the union-find decoder under the name
// decoder.StrategyUnionFind.
type strategy struct{}

// Strategy returns the union-find decoding strategy. It is also
// registered at package init, so any layer that imports this package
// (the surfcomm facade does) can resolve it with
// decoder.StrategyByName("unionfind").
func Strategy() decoder.Strategy { return strategy{} }

func init() { decoder.RegisterStrategy(strategy{}) }

func (strategy) Name() string { return decoder.StrategyUnionFind }

func (strategy) NewSolver(l *decoder.Lattice) decoder.Solver {
	return &Solver{lat: l}
}

// Solver is one worker's union-find decoder for a fixed lattice. The
// spatial detector graph builds on first use; space-time graphs build
// once per distinct round count and are reused across batches (the
// Monte Carlo and streaming paths decode a fixed round count, so this
// is one build). Not safe for concurrent use — each worker or
// streaming session owns its own Solver, per decoder.Solver's
// contract.
type Solver struct {
	lat   *decoder.Lattice
	space *ufState
	hist  *ufState
	// histRounds is the round count hist was built for; a different
	// count rebuilds (allocating — steady-state callers use one).
	histRounds int
	// retired work-ops from discarded hist states, so WorkOps stays
	// cumulative across rebuilds.
	retired uint64
}

// WorkOps reports cumulative union-find work: growth half-steps,
// union/find root walks, and peeling visits. Deterministic for a given
// decode sequence.
func (s *Solver) WorkOps() uint64 {
	ops := s.retired
	if s.space != nil {
		ops += s.space.ops
	}
	if s.hist != nil {
		ops += s.hist.ops
	}
	return ops
}

// Decode implements decoder.Solver over the single-round toric graph.
func (s *Solver) Decode(correction decoder.ErrorPattern, syndrome []bool) error {
	if s.space == nil {
		g, err := NewToric(s.lat.Distance())
		if err != nil {
			return err
		}
		s.space = newUFState(g)
	}
	if len(syndrome) != s.space.g.Checks() {
		return scerr.BadConfig("ufdecoder: syndrome length %d != %d checks", len(syndrome), s.space.g.Checks())
	}
	return s.space.decodeBits(correction, syndrome)
}

// DecodeHistory implements decoder.Solver over the space-time toric
// graph: changes holds rounds × Checks() syndrome-change bits in
// round-major order.
func (s *Solver) DecodeHistory(correction decoder.ErrorPattern, changes []bool, rounds int) error {
	if s.hist == nil || s.histRounds != rounds {
		g, err := NewToricHistory(s.lat.Distance(), rounds)
		if err != nil {
			return err
		}
		if s.hist != nil {
			s.retired += s.hist.ops
		}
		s.hist = newUFState(g)
		s.histRounds = rounds
	}
	if len(changes) != s.hist.g.Checks() {
		return scerr.BadConfig("ufdecoder: change volume length %d != %d (rounds × checks)", len(changes), s.hist.g.Checks())
	}
	return s.hist.decodeBits(correction, changes)
}

// NewGraphSolver returns a standalone union-find decode engine over an
// arbitrary detector graph (boundaries, weights, custom observables) —
// the general-purpose face of the subsystem, used by tests and future
// non-toric codes. correction must have room for every observable the
// graph names.
type GraphSolver struct {
	st *ufState
}

// NewGraphSolver builds a solver over g.
func NewGraphSolver(g *Graph) *GraphSolver { return &GraphSolver{st: newUFState(g)} }

// Decode seeds defects from bits (bit i → check node i; length must be
// Checks()) and writes the correction, cleared first.
func (gs *GraphSolver) Decode(correction decoder.ErrorPattern, bits []bool) error {
	if len(bits) != gs.st.g.Checks() {
		return scerr.BadConfig("ufdecoder: defect bitmap length %d != %d checks", len(bits), gs.st.g.Checks())
	}
	if int(gs.st.g.maxObs) >= len(correction) {
		return scerr.BadConfig("ufdecoder: correction length %d <= max observable %d", len(correction), gs.st.g.maxObs)
	}
	return gs.st.decodeBits(correction, bits)
}

// WorkOps reports cumulative work-ops.
func (gs *GraphSolver) WorkOps() uint64 { return gs.st.ops }
