package ufdecoder

import (
	"surfcomm/internal/decoder"
	"surfcomm/internal/scerr"
)

// ufState is one solver's mutable scratch for one detector graph:
// union-find forests, per-edge growth support, cluster vertex lists,
// and the peeling stacks. Every per-node and per-edge array is guarded
// by a stamp, so starting a new decode is O(defects), not O(graph) —
// untouched entries are simply stale. All buffers are allocated once
// at construction; steady-state decoding allocates nothing.
type ufState struct {
	g *Graph

	stamp uint32 // current decode epoch

	// Per-node, valid when nodeStamp matches stamp. Cluster-level
	// fields (odd, touchB, bVert, vHead, vTail, size) are maintained
	// at the cluster root.
	nodeStamp []uint32
	parent    []int32
	size      []int32
	odd       []bool
	touchB    []bool
	bVert     []int32 // one boundary vertex in the cluster, -1 if none
	defect    []bool
	vHead     []int32 // cluster vertex list head/tail (O(1) concat on merge)
	vTail     []int32
	vNext     []int32

	// Per-edge, valid when edgeStamp matches stamp.
	edgeStamp []uint32
	support   []int16

	// Per-decode scratch.
	seeds   []int32 // defect nodes in input order — the deterministic iteration order
	pending []int32 // edges that filled during the current growth round

	// Round-scoped root markers (one counter per growth/peel sweep).
	rootSeen  []uint32
	roundCtr  uint32
	oddActive int // clusters that are odd-parity and boundary-free

	// Peeling: DFS preorder, tree pointers, visited stamps.
	peelStamp  []uint32
	order      []int32
	parentEdge []int32
	parentNode []int32
	stack      []int32

	ops uint64
}

func newUFState(g *Graph) *ufState {
	n, m := g.nodes, g.Edges()
	return &ufState{
		g:          g,
		nodeStamp:  make([]uint32, n),
		parent:     make([]int32, n),
		size:       make([]int32, n),
		odd:        make([]bool, n),
		touchB:     make([]bool, n),
		bVert:      make([]int32, n),
		defect:     make([]bool, n),
		vHead:      make([]int32, n),
		vTail:      make([]int32, n),
		vNext:      make([]int32, n),
		edgeStamp:  make([]uint32, m),
		support:    make([]int16, m),
		seeds:      make([]int32, 0, n),
		pending:    make([]int32, 0, m),
		rootSeen:   make([]uint32, n),
		peelStamp:  make([]uint32, n),
		order:      make([]int32, 0, n),
		parentEdge: make([]int32, n),
		parentNode: make([]int32, n),
		stack:      make([]int32, 0, n),
	}
}

// begin opens a new decode epoch. On the (astronomically rare) stamp
// wrap it clears every stamped array so stale epochs can't alias.
func (st *ufState) begin() {
	st.stamp++
	if st.stamp == 0 {
		clear(st.nodeStamp)
		clear(st.edgeStamp)
		clear(st.rootSeen)
		clear(st.peelStamp)
		st.roundCtr = 0
		st.stamp = 1
	}
	st.seeds = st.seeds[:0]
	st.pending = st.pending[:0]
	st.oddActive = 0
}

// activate lazily initializes node v as a fresh singleton cluster for
// the current epoch.
func (st *ufState) activate(v int32) {
	if st.nodeStamp[v] == st.stamp {
		return
	}
	st.nodeStamp[v] = st.stamp
	st.parent[v] = v
	st.size[v] = 1
	st.odd[v] = false
	st.defect[v] = false
	st.vHead[v], st.vTail[v] = v, v
	st.vNext[v] = -1
	if st.g.boundary[v] {
		st.touchB[v] = true
		st.bVert[v] = v
	} else {
		st.touchB[v] = false
		st.bVert[v] = -1
	}
}

// addDefect seeds a defect at check node v.
func (st *ufState) addDefect(v int32) {
	st.activate(v)
	st.defect[v] = true
	st.odd[v] = true
	if !st.touchB[v] {
		st.oddActive++
	}
	st.seeds = append(st.seeds, v)
}

// find returns v's cluster root, halving the path as it walks.
func (st *ufState) find(v int32) int32 {
	for st.parent[v] != v {
		st.parent[v] = st.parent[st.parent[v]]
		v = st.parent[v]
		st.ops++
	}
	return v
}

// active reports whether root r still demands growth.
func (st *ufState) active(r int32) bool { return st.odd[r] && !st.touchB[r] }

// union merges the clusters rooted at ra and rb (by size, smaller
// index on ties, so merges are deterministic) and maintains the
// odd-active census.
func (st *ufState) union(ra, rb int32) {
	if ra == rb {
		return
	}
	wasA, wasB := st.active(ra), st.active(rb)
	if st.size[ra] < st.size[rb] || (st.size[ra] == st.size[rb] && rb < ra) {
		ra, rb = rb, ra
	}
	// rb joins ra.
	st.parent[rb] = ra
	st.size[ra] += st.size[rb]
	st.odd[ra] = st.odd[ra] != st.odd[rb]
	if st.touchB[rb] {
		st.touchB[ra] = true
	}
	if st.bVert[ra] < 0 {
		st.bVert[ra] = st.bVert[rb]
	}
	st.vNext[st.vTail[ra]] = st.vHead[rb]
	st.vTail[ra] = st.vTail[rb]
	if st.active(ra) {
		st.oddActive++
	}
	if wasA {
		st.oddActive--
	}
	if wasB {
		st.oddActive--
	}
	st.ops++
}

// growRound advances every odd boundary-free cluster by one half-step
// on all edges incident to its vertices, then merges across the edges
// that filled. Increment and merge are two phases, so cluster
// membership is stable while frontiers are scanned and the result is
// independent of scan order races (there are none — all sequential).
func (st *ufState) growRound() {
	g := st.g
	st.roundCtr++
	for _, s := range st.seeds {
		r := st.find(s)
		if st.rootSeen[r] == st.roundCtr {
			continue
		}
		st.rootSeen[r] = st.roundCtr
		if !st.active(r) {
			continue
		}
		for v := st.vHead[r]; v >= 0; v = st.vNext[v] {
			for k := g.adjOff[v]; k < g.adjOff[v+1]; k++ {
				e := g.adj[k]
				if st.edgeStamp[e] != st.stamp {
					st.edgeStamp[e] = st.stamp
					st.support[e] = 0
				}
				full := 2 * g.edgeW[e]
				if st.support[e] >= full {
					continue
				}
				st.support[e]++
				st.ops++
				if st.support[e] == full {
					st.pending = append(st.pending, e)
				}
			}
		}
	}
	for _, e := range st.pending {
		u, v := st.g.edgeU[e], st.g.edgeV[e]
		st.activate(u)
		st.activate(v)
		st.union(st.find(u), st.find(v))
	}
	st.pending = st.pending[:0]
}

// grow runs growth rounds until no odd boundary-free cluster remains.
func (st *ufState) grow() error {
	// Each round adds at least one half-step of support somewhere, so
	// total rounds are bounded by the graph's support capacity; the
	// guard turns a broken invariant into an error instead of a hang.
	limit := 4*st.g.nodes + 8
	for round := 0; st.oddActive > 0; round++ {
		if round > limit {
			return scerr.BadConfig("ufdecoder: growth did not converge after %d rounds", round)
		}
		st.growRound()
	}
	return nil
}

// peel reads the correction off each cluster: a DFS over the fully
// grown edges builds a spanning forest (rooted at a boundary vertex
// when the cluster has one), then vertices unwind in reverse preorder
// — a defect flips its tree edge's observable and hands its parity to
// the parent; boundary vertices absorb whatever reaches them.
func (st *ufState) peel(correction decoder.ErrorPattern) error {
	g := st.g
	st.roundCtr++
	for _, s := range st.seeds {
		r := st.find(s)
		if st.rootSeen[r] == st.roundCtr {
			continue
		}
		st.rootSeen[r] = st.roundCtr
		start := r
		if st.bVert[r] >= 0 {
			start = st.bVert[r]
		}
		st.order = st.order[:0]
		st.stack = st.stack[:0]
		st.peelStamp[start] = st.stamp
		st.parentEdge[start] = -1
		st.parentNode[start] = -1
		st.stack = append(st.stack, start)
		for len(st.stack) > 0 {
			v := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			st.order = append(st.order, v)
			for k := g.adjOff[v]; k < g.adjOff[v+1]; k++ {
				e := g.adj[k]
				if st.edgeStamp[e] != st.stamp || st.support[e] < 2*g.edgeW[e] {
					continue
				}
				u := g.edgeU[e]
				if u == v {
					u = g.edgeV[e]
				}
				if st.peelStamp[u] == st.stamp {
					continue
				}
				st.peelStamp[u] = st.stamp
				st.parentEdge[u] = e
				st.parentNode[u] = v
				st.stack = append(st.stack, u)
				st.ops++
			}
		}
		for k := len(st.order) - 1; k >= 0; k-- {
			v := st.order[k]
			if g.boundary[v] {
				st.defect[v] = false // the boundary absorbs anything pushed here
				continue
			}
			if !st.defect[v] {
				continue
			}
			e := st.parentEdge[v]
			if e < 0 {
				return scerr.BadConfig("ufdecoder: unmatched defect at node %d (odd cluster parity)", v)
			}
			if obs := g.edgeObs[e]; obs >= 0 {
				correction[obs] = !correction[obs]
			}
			st.defect[v] = false
			p := st.parentNode[v]
			st.defect[p] = !st.defect[p]
			st.ops++
		}
	}
	return nil
}

// decodeBits runs the full union-find pipeline for the defect bitmap
// (bit i seeds node i; bits beyond the graph's checks are rejected by
// the caller) and writes the correction (cleared first).
func (st *ufState) decodeBits(correction decoder.ErrorPattern, bits []bool) error {
	st.begin()
	clear(correction)
	for i, hot := range bits {
		if hot {
			st.addDefect(int32(i))
		}
	}
	if len(st.seeds) == 0 {
		return nil
	}
	if len(st.seeds)%2 != 0 && !st.g.hasBnd {
		return scerr.BadConfig("ufdecoder: odd defect count %d on a boundaryless graph (corrupted syndrome)", len(st.seeds))
	}
	if err := st.grow(); err != nil {
		return err
	}
	return st.peel(correction)
}
