package surfcomm

import (
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"reflect"
	"testing"
)

// planFNV fingerprints a plan's full JSON encoding — the byte-identity
// check the single-module parity contract is pinned with.
func planFNV(t *testing.T, p Plan) uint64 {
	t.Helper()
	enc, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(enc)
	return h.Sum64()
}

func modularToolchain(t *testing.T, opts ...ToolchainOption) *Toolchain {
	t.Helper()
	tc, err := NewToolchain(append([]ToolchainOption{WithModular(), WithWorkers(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// TestSingleModuleParityFNV pins the acceptance contract: a program
// whose entry makes no calls compiles through CompileIncremental to a
// plan byte-identical to the flat pipeline's, on every backend.
func TestSingleModuleParityFNV(t *testing.T) {
	tc := modularToolchain(t)
	p := NewProgram("solo", 6)
	m := p.Modules["solo"]
	for q := 0; q < 6; q++ {
		m.Gate(OpH, q)
	}
	for q := 0; q+1 < 6; q++ {
		m.Gate(OpCNOT, q, q+1)
	}
	m.Gate(OpT, 3)
	flat, err := p.Flatten(InlineAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Backends() {
		want, err := tc.Compile(context.Background(), b, flat)
		if err != nil {
			t.Fatalf("%s flat: %v", b.Name(), err)
		}
		got, err := tc.CompileIncremental(context.Background(), b, p)
		if err != nil {
			t.Fatalf("%s incremental: %v", b.Name(), err)
		}
		if got.Modular != nil {
			t.Errorf("%s: single-module plan should leave Modular nil", b.Name())
		}
		if wf, gf := planFNV(t, want), planFNV(t, got); wf != gf {
			t.Errorf("%s: FNV parity broken: flat %x vs incremental %x", b.Name(), wf, gf)
		}
	}
}

// TestLeafEditCompileCount pins the incremental acceptance criterion:
// editing one leaf of an N-module pipeline recompiles exactly that
// module; everything else is served from the module cache.
func TestLeafEditCompileCount(t *testing.T) {
	const n = 8
	tc := modularToolchain(t)
	p, err := PipelineProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Modular == nil {
		t.Fatal("multi-module plan missing Modular provenance")
	}
	if got := len(cold.Modular.Compiled); got != n+1 { // n stages + entry
		t.Fatalf("cold compile built %d modules (%v), want %d", got, cold.Modular.Compiled, n+1)
	}

	warm, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Modular.Compiled) != 0 || warm.Modular.Hits != n+1 {
		t.Fatalf("warm recompile built %v (hits %d), want all cached", warm.Modular.Compiled, warm.Modular.Hits)
	}
	if planFNV(t, cold) != planFNV(t, warm) {
		// Cached flags differ module-by-module, so compare resources.
		if cold.Cycles != warm.Cycles || cold.PhysicalQubits != warm.PhysicalQubits || cold.CommOps != warm.CommOps {
			t.Fatal("warm recompile changed plan resources")
		}
	}

	edited, err := MutateModule(p, "stagec", 1)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := tc.CompileIncremental(context.Background(), BraidBackend{}, edited)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.Modular.Compiled, []string{"stagec"}) {
		t.Fatalf("leaf edit recompiled %v, want [stagec]", inc.Modular.Compiled)
	}
	if inc.Modular.Hits != n || inc.Modular.Misses != 1 {
		t.Fatalf("leaf edit hits/misses = %d/%d, want %d/1", inc.Modular.Hits, inc.Modular.Misses, n)
	}
	if inc.Modular.LinkDigest == cold.Modular.LinkDigest {
		t.Error("edit should change the link digest")
	}
}

// TestRecursiveProgramErrBadConfig: recursive call chains are rejected
// with the API's standard configuration error.
func TestRecursiveProgramErrBadConfig(t *testing.T) {
	tc := modularToolchain(t)
	p := NewProgram("a", 1)
	p.Modules["a"].Call("b", 0)
	b := &Module{Name: "b", NumQubits: 1}
	b.Call("a", 0)
	if err := p.AddModule(b); err != nil {
		t.Fatal(err)
	}
	_, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("recursive program: got %v, want ErrBadConfig", err)
	}
}

// TestDiamondDAGCompiledOncePerModule: a module reachable through two
// parents compiles once and links everywhere.
func TestDiamondDAGCompiledOncePerModule(t *testing.T) {
	tc := modularToolchain(t)
	p := NewProgram("main", 4)
	main := p.Modules["main"]
	main.Gate(OpH, 0)
	main.Call("left", 0, 1)
	main.Call("right", 2, 3)
	for _, spec := range []struct{ name string }{{"left"}, {"right"}} {
		m := &Module{Name: spec.name, NumQubits: 2}
		m.Gate(OpCNOT, 0, 1)
		if spec.name == "left" {
			m.Gate(OpT, 0)
		}
		m.Call("shared", 1)
		if err := p.AddModule(m); err != nil {
			t.Fatal(err)
		}
	}
	shared := &Module{Name: "shared", NumQubits: 1}
	shared.Gate(OpT, 0)
	if err := p.AddModule(shared); err != nil {
		t.Fatal(err)
	}

	plan, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, name := range plan.Modular.Compiled {
		counts[name]++
	}
	for _, name := range []string{"main", "left", "right", "shared"} {
		if counts[name] != 1 {
			t.Errorf("module %s compiled %d times, want 1", name, counts[name])
		}
	}
	if len(plan.Modular.Modules) != 4 {
		t.Errorf("linked %d modules, want 4", len(plan.Modular.Modules))
	}
}

// TestCallSiteAliasing covers the qubit-map edge cases across Call
// sites: one cached module plan serves call sites with different
// bindings, and a call aliasing one caller qubit to two formals is
// rejected up front.
func TestCallSiteAliasing(t *testing.T) {
	tc := modularToolchain(t)

	// Same module, two call sites, different (reversed) bindings: one
	// compile, binding-independent digest, both executions linked.
	p := NewProgram("main", 4)
	main := p.Modules["main"]
	main.Gate(OpH, 0)
	main.Call("kern", 0, 1)
	main.Call("kern", 3, 2) // reversed, disjoint window
	kern := &Module{Name: "kern", NumQubits: 2}
	kern.Gate(OpCNOT, 0, 1)
	kern.Gate(OpT, 1)
	if err := p.AddModule(kern); err != nil {
		t.Fatal(err)
	}
	plan, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	kc := 0
	for _, name := range plan.Modular.Compiled {
		if name == "kern" {
			kc++
		}
	}
	if kc != 1 {
		t.Fatalf("kern compiled %d times across 2 differently-bound call sites, want 1", kc)
	}
	if plan.Modular.CallExecutions != 2 || plan.Modular.CrossBraids != 4 {
		t.Errorf("executions/braids = %d/%d, want 2/4",
			plan.Modular.CallExecutions, plan.Modular.CrossBraids)
	}

	// Aliasing one caller qubit into two formals is invalid.
	bad := NewProgram("main", 2)
	bad.Modules["main"].Call("kern2", 1, 1)
	k2 := &Module{Name: "kern2", NumQubits: 2}
	k2.Gate(OpCNOT, 0, 1)
	if err := bad.AddModule(k2); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompileIncremental(context.Background(), BraidBackend{}, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("aliased call args: got %v, want ErrBadConfig", err)
	}
}

// TestCompileIncrementalDeterministic: plans are bit-identical across
// worker counts and cache states (modulo provenance flags).
func TestCompileIncrementalDeterministic(t *testing.T) {
	p, err := PipelineProgram(4)
	if err != nil {
		t.Fatal(err)
	}
	var base Plan
	for i, workers := range []int{1, 4} {
		tc := modularToolchain(t, WithWorkers(workers))
		plan, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = plan
			continue
		}
		if base.Cycles != plan.Cycles || base.PhysicalQubits != plan.PhysicalQubits ||
			base.CommOps != plan.CommOps || base.Modular.LinkDigest != plan.Modular.LinkDigest {
			t.Fatalf("workers=%d diverges: %+v vs %+v", workers, base.Modular, plan.Modular)
		}
	}
}

// TestCloneWithModuleCacheShares: two toolchain clones over one cache
// see each other's module plans.
func TestCloneWithModuleCacheShares(t *testing.T) {
	tc := modularToolchain(t)
	p, err := PipelineProgram(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompileIncremental(context.Background(), BraidBackend{}, p); err != nil {
		t.Fatal(err)
	}
	clone := tc.CloneWithModuleCache(tc.modCache)
	plan, err := clone.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Modular.Compiled) != 0 {
		t.Fatalf("clone recompiled %v, want full cache reuse", plan.Modular.Compiled)
	}
	// And a nil cache disables reuse entirely.
	cold := tc.CloneWithModuleCache(nil)
	plan, err = cold.CompileIncremental(context.Background(), BraidBackend{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Modular.Hits != 0 || len(plan.Modular.Compiled) != 4 {
		t.Fatalf("nil cache: hits %d compiled %v, want 0 hits / 4 compiles",
			plan.Modular.Hits, plan.Modular.Compiled)
	}
}
