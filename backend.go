package surfcomm

import (
	"context"

	"surfcomm/internal/braid"
	"surfcomm/internal/scerr"
	"surfcomm/internal/simd"
	"surfcomm/internal/surface"
	"surfcomm/internal/teleport"
)

// JITWindowAuto selects the just-in-time look-ahead heuristic for the
// planar backend's EPR distribution (see JITWindow).
const JITWindowAuto = int64(-1)

// Target is the compilation target a Backend lowers a circuit onto:
// the code distance, device technology, and the per-backend knobs of
// the paper's toolflow. A Toolchain derives one from its options; zero
// fields select the paper's defaults.
type Target struct {
	// Distance is the surface code distance d; zero selects 9.
	Distance int
	// Technology captures the physical device; a zero value selects
	// the baseline superconducting technology at p_P = 1e-8.
	Technology Technology
	// Policy is the braid prioritization heuristic (braid and surgery
	// backends).
	Policy BraidPolicy
	// Seed drives layout and partition optimizers.
	Seed int64
	// Window is the EPR look-ahead in EC cycles (planar backend);
	// zero or JITWindowAuto selects the just-in-time heuristic.
	// (Explicit zero-window studies go through the EPR window sweep.)
	Window int64
	// LinkBandwidth is EPR halves per link per cycle; zero selects 4.
	LinkBandwidth int
	// SIMD overrides the Multi-SIMD machine shape; the zero value
	// sizes the machine from the circuit (the Fig. 3a rule).
	SIMD SIMDConfig
	// LocalTOps is the magic-state ablation: T-gate ancillas assumed
	// pre-delivered instead of braided in from factories.
	LocalTOps bool
	// RecordSchedule captures the static schedule in the Plan's braid
	// result so it can be replay-validated.
	RecordSchedule bool
	// Placement overrides the policy-selected qubit arrangement
	// (braid and surgery backends).
	Placement *Placement
	// Device is the physical topology the machine is realized on (dead
	// tiles, disabled links, per-link latency multipliers). Nil selects
	// the perfect uniform grid; every backend on a perfect device is
	// bit-identical to the pre-device pipeline. Routes impossible on a
	// defective device fail with an error matching ErrUnroutable.
	Device *Device
	// Defects is an optional live-defect schedule: couplers that die
	// mid-execution (braid and surgery backends). In-flight braids are
	// torn down and re-routed around each death; ErrUnroutable only
	// when the surviving fabric disconnects.
	Defects *DefectSchedule
}

// withDefaults fills the paper's default target parameters.
func (t Target) withDefaults() Target {
	if t.Distance == 0 {
		t.Distance = 9
	}
	if t.Technology == (Technology{}) {
		t.Technology = Superconducting(1e-8)
	}
	if t.Window == 0 {
		t.Window = JITWindowAuto
	}
	return t
}

// validate checks the target after defaulting. Every dimension an
// internal constructor derives from the target (mesh junction grids,
// device topologies, SIMD region grids) is bounded here, so the
// constructors' invariant panics are unreachable from the public API:
// a bad target fails with an error matching ErrBadConfig instead.
func (t Target) validate() error {
	if t.Distance < 1 {
		return scerr.BadConfig("target: distance %d < 1", t.Distance)
	}
	if t.Policy < Policy0 || t.Policy > Policy6 {
		return scerr.BadConfig("target: unknown policy %d", int(t.Policy))
	}
	if t.Window < 0 && t.Window != JITWindowAuto {
		return scerr.BadConfig("target: negative window %d", t.Window)
	}
	if t.LinkBandwidth < 0 {
		return scerr.BadConfig("target: negative link bandwidth %d", t.LinkBandwidth)
	}
	if t.SIMD != (SIMDConfig{}) {
		if err := t.SIMD.Validate(); err != nil {
			return err
		}
	}
	if err := t.Technology.Validate(); err != nil {
		return scerr.BadConfig("target: %v", err)
	}
	return nil
}

// Plan is the unified result of compiling one circuit onto one
// communication backend: the schedule length, the physical footprint,
// and the backend-specific artifacts.
type Plan struct {
	Backend  string // compiling backend's Name
	Circuit  string // circuit name
	Distance int
	Seed     int64
	// Device names the topology the plan was compiled on ("perfect",
	// or preset(p=…,seed=…) for defective devices).
	Device string

	// Cycles is the end-to-end schedule length in EC cycles; Seconds
	// converts it at the target technology's syndrome cycle time.
	Cycles  int64
	Seconds float64
	// PhysicalQubits is the machine footprint under the backend's
	// encoding (double-defect tiles + channels, planar tiles + live
	// EPR qubits, or planar tiles + merge corridors).
	PhysicalQubits float64
	// CommOps counts the backend's communication events: braids
	// placed, EPR pairs distributed, or merge chains executed.
	CommOps int64

	// Modular records hierarchical-compile provenance (per-module cache
	// hits, recompiled modules, stitch costs) when the plan came from
	// CompileIncremental's modular path; nil for flat compiles and for
	// single-module fast-path programs.
	Modular *ModularResult `json:",omitempty"`

	// Braid is the double-defect / surgery simulation result (nil for
	// the planar backend).
	Braid *BraidResult
	// SIMD and EPR are the planar backend's schedule and distribution
	// results (nil for the other backends).
	SIMD *SIMDSchedule
	EPR  *TeleportResult
}

// Backend is one of the paper's communication schemes, compiled behind
// a common interface: it lowers a logical circuit onto a Target and
// returns the unified Plan. Compiles are cancelable through ctx; an
// aborted compile returns an error matching ErrCanceled.
type Backend interface {
	Name() string
	Compile(ctx context.Context, c *Circuit, t *Target) (Plan, error)
}

// Backends returns the three first-class backends in paper order:
// double-defect braiding, planar Multi-SIMD + EPR teleportation, and
// lattice surgery.
func Backends() []Backend {
	return []Backend{BraidBackend{}, PlanarBackend{}, SurgeryBackend{}}
}

// BackendByName resolves a backend by its Name; the error matches
// ErrBadConfig for unknown names.
func BackendByName(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, scerr.BadConfig("no backend named %q", name)
}

func prepTarget(c *Circuit, t *Target) (Target, error) {
	if c == nil {
		return Target{}, scerr.BadConfig("compile: nil circuit")
	}
	if t == nil {
		return Target{}, scerr.BadConfig("compile: nil target")
	}
	if c.NumQubits < 1 {
		return Target{}, scerr.BadConfig("compile: circuit %q has no qubits", c.Name)
	}
	if err := c.Validate(); err != nil {
		return Target{}, scerr.BadConfig("compile: %v", err)
	}
	tt := t.withDefaults()
	if err := tt.validate(); err != nil {
		return Target{}, err
	}
	if tt.Placement != nil {
		if err := tt.Placement.Validate(); err != nil {
			return Target{}, scerr.BadConfig("compile: %v", err)
		}
		if len(tt.Placement.Pos) < c.NumQubits {
			return Target{}, scerr.BadConfig("compile: placement covers %d qubits, circuit %q has %d",
				len(tt.Placement.Pos), c.Name, c.NumQubits)
		}
	}
	return tt, nil
}

// BraidBackend compiles onto the tiled double-defect architecture: the
// dynamic braid simulator discovers a static schedule under the
// target's priority policy (paper §6).
type BraidBackend struct{}

// Name returns "braid".
func (BraidBackend) Name() string { return "braid" }

// Compile runs the braid simulation and reports its Figure 6 metrics
// as a Plan.
func (BraidBackend) Compile(ctx context.Context, c *Circuit, t *Target) (Plan, error) {
	return braidCompile(ctx, c, t, false)
}

// SurgeryBackend compiles onto lattice surgery (paper §8.2): planar
// patches communicate by merge/split chains that claim their whole
// route — braiding's contention without its distance-independent
// speed, teleportation's planar tiles without its prefetchability.
type SurgeryBackend struct{}

// Name returns "surgery".
func (SurgeryBackend) Name() string { return "surgery" }

// Compile runs the merge-chain simulation and reports it as a Plan.
func (SurgeryBackend) Compile(ctx context.Context, c *Circuit, t *Target) (Plan, error) {
	return braidCompile(ctx, c, t, true)
}

// braidCompile is the shared route-claiming compile: the braid engine
// in braid or surgery timing mode.
func braidCompile(ctx context.Context, c *Circuit, t *Target, surgery bool) (Plan, error) {
	tt, err := prepTarget(c, t)
	if err != nil {
		return Plan{}, err
	}
	name := "braid"
	if surgery {
		name = "surgery"
	}
	res, err := braid.SimulateContext(ctx, c, tt.Policy, braid.Config{
		Distance:       tt.Distance,
		Seed:           tt.Seed,
		LocalTOps:      tt.LocalTOps,
		RecordSchedule: tt.RecordSchedule,
		Placement:      tt.Placement,
		Surgery:        surgery,
		Device:         tt.Device,
		Defects:        tt.Defects,
	})
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Backend:        name,
		Circuit:        c.Name,
		Distance:       tt.Distance,
		Seed:           tt.Seed,
		Device:         tt.Device.String(),
		Cycles:         res.ScheduleCycles,
		Seconds:        float64(res.ScheduleCycles) * tt.Technology.SyndromeCycleTime(),
		PhysicalQubits: float64(res.PhysicalQubits),
		CommOps:        res.BraidsPlaced,
		Braid:          &res,
	}, nil
}

// PlanarBackend compiles onto the planar Multi-SIMD architecture: the
// region scheduler packs operations into SIMD broadcasts, and the EPR
// distribution simulator replays the resulting move list at the
// target's look-ahead window (paper §4.4, §8.1) — scheduling and
// teleportation fused into one stage.
type PlanarBackend struct{}

// Name returns "planar".
func (PlanarBackend) Name() string { return "planar" }

// Compile schedules the circuit and distributes its EPR pairs,
// reporting the fused result as a Plan.
func (PlanarBackend) Compile(ctx context.Context, c *Circuit, t *Target) (Plan, error) {
	tt, err := prepTarget(c, t)
	if err != nil {
		return Plan{}, err
	}
	scfg := tt.SIMD
	if scfg == (SIMDConfig{}) {
		scfg = simd.ConfigFor(c.NumQubits, tt.Seed)
	}
	sched, err := simd.RunContext(ctx, c, scfg)
	if err != nil {
		return Plan{}, err
	}
	tcfg := teleport.Config{Distance: tt.Distance, LinkBandwidth: tt.LinkBandwidth, Device: tt.Device}
	window := tt.Window
	if window == JITWindowAuto {
		window = teleport.JITWindow(sched, tcfg)
	}
	epr, err := teleport.DistributeContext(ctx, sched, window, tcfg)
	if err != nil {
		return Plan{}, err
	}
	// Footprint: data tiles plus the paper's 1:4 ancilla-factory
	// provisioning, in planar tiles, plus one physical qubit per live
	// EPR half in flight at the peak (EPR halves travel unencoded).
	q := float64(c.NumQubits)
	factory := q / surface.AncillaDataRatio
	if factory < surface.MagicFactoryLogicalQubits {
		factory = surface.MagicFactoryLogicalQubits
	}
	tiles := q + factory
	return Plan{
		Backend:        "planar",
		Circuit:        c.Name,
		Distance:       tt.Distance,
		Seed:           tt.Seed,
		Device:         tt.Device.String(),
		Cycles:         epr.ScheduleCycles,
		Seconds:        float64(epr.ScheduleCycles) * tt.Technology.SyndromeCycleTime(),
		PhysicalQubits: tiles*float64(surface.PlanarTileQubits(tt.Distance)) + float64(epr.PeakLiveEPR),
		CommOps:        int64(epr.TotalPairs),
		SIMD:           sched,
		EPR:            &epr,
	}, nil
}
