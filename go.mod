module surfcomm

go 1.24
