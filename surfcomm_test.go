package surfcomm_test

import (
	"testing"

	"surfcomm"
)

// TestEndToEndPipeline exercises the full public API the way the paper's
// toolflow runs: generate an application, analyze it, map it to both
// architectures, and evaluate the design space.
func TestEndToEndPipeline(t *testing.T) {
	w := surfcomm.Workload{
		Name:    "IM",
		Circuit: surfcomm.Ising(surfcomm.IsingConfig{N: 32, Steps: 1}, true),
	}

	est, err := surfcomm.EstimateCircuit(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if est.LogicalOps == 0 || est.Parallelism <= 1 {
		t.Fatalf("estimate implausible: %+v", est)
	}

	braidRes, err := surfcomm.SimulateBraids(w.Circuit, surfcomm.Policy6, surfcomm.BraidConfig{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if braidRes.ScheduleCycles < braidRes.CriticalPathCycles {
		t.Fatal("braid schedule beats critical path")
	}

	sched, err := surfcomm.ScheduleSIMD(w.Circuit, surfcomm.SIMDConfig{Regions: 4, Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := surfcomm.TeleportConfig{Distance: 5}
	epr, err := surfcomm.DistributeEPR(sched, surfcomm.JITWindow(sched, cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if epr.ScheduleCycles < epr.BaseCycles {
		t.Fatal("EPR schedule below base")
	}

	m, err := surfcomm.Characterize(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := surfcomm.Evaluate(m, 1e6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if dp.QubitsRatio <= 1 {
		t.Error("planar tiles should be smaller than double-defect tiles")
	}
}

// TestPolicySweepViaFacade checks the Figure 6 headline through the
// public API: the combined policy beats program order for a parallel
// workload.
func TestPolicySweepViaFacade(t *testing.T) {
	im := surfcomm.Ising(surfcomm.IsingConfig{N: 32, Steps: 1}, true)
	p0, err := surfcomm.SimulateBraids(im, surfcomm.Policy0, surfcomm.BraidConfig{Distance: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p6, err := surfcomm.SimulateBraids(im, surfcomm.Policy6, surfcomm.BraidConfig{Distance: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p6.Ratio >= p0.Ratio {
		t.Errorf("Policy 6 (%.2f) should beat Policy 0 (%.2f)", p6.Ratio, p0.Ratio)
	}
}

// TestBuilderFacade builds a circuit through the public API.
func TestBuilderFacade(t *testing.T) {
	b := surfcomm.NewBuilder("api", 3)
	b.H(0)
	b.Toffoli(0, 1, 2)
	b.MeasZ(2)
	c := b.Circuit
	if c.TCount() != 7 {
		t.Errorf("Toffoli T-count = %d, want 7", c.TCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	q := surfcomm.NewCircuit("direct", 2)
	q.Append(surfcomm.OpCNOT, 0, 1)
	if q.TwoQubitCount() != 1 {
		t.Error("opcode constants should work through the facade")
	}
}

// TestEPRWindowTradeoffViaFacade checks the §8.1 claim end to end.
func TestEPRWindowTradeoffViaFacade(t *testing.T) {
	sq := surfcomm.SQ(surfcomm.SQConfig{N: 6, Iters: 1})
	sched, err := surfcomm.ScheduleSIMD(sq, surfcomm.SIMDConfig{Regions: 4, Width: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := surfcomm.TeleportConfig{Distance: 9}
	results, err := surfcomm.SweepEPRWindows(sched,
		[]int64{surfcomm.JITWindow(sched, cfg), surfcomm.PrefetchAll}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jit, flood := results[0], results[1]
	if flood.PeakLiveEPR <= jit.PeakLiveEPR {
		t.Errorf("prefetch-all peak %d should exceed JIT peak %d", flood.PeakLiveEPR, jit.PeakLiveEPR)
	}
	if jit.LatencyOverhead > 0.25 {
		t.Errorf("JIT latency overhead %.1f%% too large", 100*jit.LatencyOverhead)
	}
}
