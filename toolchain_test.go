package surfcomm_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"surfcomm"
)

// --- API parity: the Toolchain must reproduce the deprecated
// free-function paths byte-for-byte at the same seed. ---

// TestBraidBackendParity compiles every Fig6Suite workload through
// Toolchain.Compile and asserts the plan — including the recorded
// static schedule — is identical to the deprecated SimulateBraids path.
func TestBraidBackendParity(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range surfcomm.Fig6Suite() {
		plan, err := tc.Compile(context.Background(), surfcomm.BraidBackend{}, w.Circuit,
			func(tg *surfcomm.Target) { tg.RecordSchedule = true })
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		ref, err := surfcomm.SimulateBraids(w.Circuit, surfcomm.Policy6,
			surfcomm.BraidConfig{Distance: 5, Seed: 1, RecordSchedule: true})
		if err != nil {
			t.Fatalf("%s: deprecated path: %v", w.Name, err)
		}
		if plan.Cycles != ref.ScheduleCycles {
			t.Errorf("%s: plan cycles %d != deprecated %d", w.Name, plan.Cycles, ref.ScheduleCycles)
		}
		if plan.PhysicalQubits != float64(ref.PhysicalQubits) {
			t.Errorf("%s: plan qubits %g != deprecated %d", w.Name, plan.PhysicalQubits, ref.PhysicalQubits)
		}
		if plan.CommOps != ref.BraidsPlaced {
			t.Errorf("%s: plan comm ops %d != deprecated %d", w.Name, plan.CommOps, ref.BraidsPlaced)
		}
		if !reflect.DeepEqual(plan.Braid.Schedule, ref.Schedule) {
			t.Errorf("%s: recorded schedules diverge (%d vs %d entries)",
				w.Name, len(plan.Braid.Schedule), len(ref.Schedule))
		}
	}
}

// TestPlanarBackendParity compiles every Fig6Suite workload through the
// planar backend and asserts the fused schedule + distribution match
// the deprecated ScheduleSIMD → JITWindow → DistributeEPR chain.
func TestPlanarBackendParity(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range surfcomm.Fig6Suite() {
		plan, err := tc.Compile(context.Background(), surfcomm.PlanarBackend{}, w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		regions := 4
		if w.Circuit.NumQubits > 128 {
			regions = 16
		}
		width := 32
		if perBank := (w.Circuit.NumQubits + regions - 1) / regions; perBank > width {
			width = perBank
		}
		sched, err := surfcomm.ScheduleSIMD(w.Circuit,
			surfcomm.SIMDConfig{Regions: regions, Width: width, Seed: 1})
		if err != nil {
			t.Fatalf("%s: deprecated path: %v", w.Name, err)
		}
		cfg := surfcomm.TeleportConfig{Distance: 9}
		ref, err := surfcomm.DistributeEPR(sched, surfcomm.JITWindow(sched, cfg), cfg)
		if err != nil {
			t.Fatalf("%s: deprecated path: %v", w.Name, err)
		}
		if *plan.EPR != ref {
			t.Errorf("%s: EPR result diverges: %+v vs %+v", w.Name, *plan.EPR, ref)
		}
		if !reflect.DeepEqual(plan.SIMD.Moves, sched.Moves) {
			t.Errorf("%s: move lists diverge (%d vs %d moves)",
				w.Name, len(plan.SIMD.Moves), len(sched.Moves))
		}
		if plan.Cycles != ref.ScheduleCycles {
			t.Errorf("%s: plan cycles %d != deprecated %d", w.Name, plan.Cycles, ref.ScheduleCycles)
		}
	}
}

// TestSurgeryBackendCompilesSuite checks the third backend end to end:
// deterministic plans, schedules no faster than the merge-chain
// critical path, and — the paper's §8.2 argument — communication that
// costs more cycles than braiding's distance-independent claims.
func TestSurgeryBackendCompilesSuite(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range surfcomm.Fig6Suite() {
		plan, err := tc.Compile(context.Background(), surfcomm.SurgeryBackend{}, w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		again, err := tc.Compile(context.Background(), surfcomm.SurgeryBackend{}, w.Circuit)
		if err != nil {
			t.Fatalf("%s: recompile: %v", w.Name, err)
		}
		if plan.Cycles != again.Cycles || plan.CommOps != again.CommOps {
			t.Errorf("%s: surgery compile not deterministic", w.Name)
		}
		if plan.Cycles < plan.Braid.CriticalPathCycles {
			t.Errorf("%s: schedule %d beats critical path %d",
				w.Name, plan.Cycles, plan.Braid.CriticalPathCycles)
		}
		braidPlan, err := tc.Compile(context.Background(), surfcomm.BraidBackend{}, w.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cycles < braidPlan.Cycles {
			t.Errorf("%s: surgery (%d cycles) should not beat braiding (%d cycles)",
				w.Name, plan.Cycles, braidPlan.Cycles)
		}
		if plan.PhysicalQubits >= braidPlan.PhysicalQubits {
			t.Errorf("%s: surgery qubits %g should undercut double-defect %g",
				w.Name, plan.PhysicalQubits, braidPlan.PhysicalQubits)
		}
	}
}

func syntheticModel(name string) surfcomm.AppModel {
	return surfcomm.AppModel{
		Name:             name,
		Parallelism:      2,
		SchedParallelism: 2,
		MoveFraction:     0.5,
		CongestionDD:     1.8,
		QubitsForOps:     func(k float64) float64 { return 8 * math.Cbrt(k) },
	}
}

// TestToolchainRecordParity asserts the Toolchain grids serialize to
// byte-identical JSON records as the deprecated Sweep* free functions
// at the same seed — the BENCH_sweep.json compatibility guarantee.
func TestToolchainRecordParity(t *testing.T) {
	ctx := context.Background()
	const seed = 3
	tc, err := surfcomm.NewToolchain(
		surfcomm.WithSeed(seed),
		surfcomm.WithTechnology(surfcomm.Superconducting(1e-6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	opt := surfcomm.SweepOptions{Seed: seed}

	workloads := []surfcomm.Workload{
		{Name: "GSE", Circuit: surfcomm.GSE(surfcomm.GSEConfig{M: 4, Steps: 1})},
		{Name: "IM", Circuit: surfcomm.Ising(surfcomm.IsingConfig{N: 10, Steps: 1}, true)},
	}
	newModels, err := tc.Characterize(ctx, workloads)
	if err != nil {
		t.Fatal(err)
	}
	oldModels, err := surfcomm.SweepCharacterize(opt, workloads)
	if err != nil {
		t.Fatal(err)
	}
	var newRecs, oldRecs []surfcomm.SweepCellResult
	newRecs = append(newRecs, surfcomm.SweepModelRecords(seed, newModels)...)
	oldRecs = append(oldRecs, surfcomm.SweepModelRecords(seed, oldModels)...)

	m := syntheticModel("synthetic")
	newCurve, err := tc.Curve(ctx, m, 0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	oldCurve, err := surfcomm.SweepCurve(opt, m, 1e-6, 0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	newRecs = append(newRecs, surfcomm.SweepCurveRecords("figure7", m.Name, 1e-6, seed, newCurve)...)
	oldRecs = append(oldRecs, surfcomm.SweepCurveRecords("figure7", m.Name, 1e-6, seed, oldCurve)...)

	models := []surfcomm.AppModel{m, syntheticModel("synthetic2")}
	rates := surfcomm.Figure9ErrorRates()
	newBound, err := tc.Boundary(ctx, models, rates)
	if err != nil {
		t.Fatal(err)
	}
	oldBound, err := surfcomm.SweepBoundary(opt, models, rates)
	if err != nil {
		t.Fatal(err)
	}
	newRecs = append(newRecs, surfcomm.SweepBoundaryRecords(seed, models, newBound)...)
	oldRecs = append(oldRecs, surfcomm.SweepBoundaryRecords(seed, models, oldBound)...)

	var a, b bytes.Buffer
	if err := surfcomm.WriteSweepRecords(&a, newRecs); err != nil {
		t.Fatal(err)
	}
	if err := surfcomm.WriteSweepRecords(&b, oldRecs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("toolchain records differ from deprecated free-function records")
	}
}

// TestFigure6GridParity runs the Figure 6 grid both ways at a reduced
// distance and compares the serialized records byte-for-byte.
func TestFigure6GridParity(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	newCells, err := tc.Figure6(context.Background(), surfcomm.SweepFigure6Options{Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	oldCells, err := surfcomm.SweepFigure6(surfcomm.SweepOptions{Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := surfcomm.WriteSweepRecords(&a, surfcomm.SweepFigure6Records(1, newCells)); err != nil {
		t.Fatal(err)
	}
	if err := surfcomm.WriteSweepRecords(&b, surfcomm.SweepFigure6Records(1, oldCells)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Figure 6 grid records differ between toolchain and deprecated path")
	}
}

// --- Cancellation: every backend must abort a canceled compile with
// ErrCanceled and leak no goroutines. ---

// waitGoroutines polls until the goroutine count returns to the
// baseline (scheduler cleanup is asynchronous).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func testBackendCancellation(t *testing.T, b surfcomm.Backend) {
	t.Helper()
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
	if err != nil {
		t.Fatal(err)
	}
	circ := surfcomm.Ising(surfcomm.IsingConfig{N: 32, Steps: 1}, true)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = tc.Compile(ctx, b, circ)
	if !errors.Is(err, surfcomm.ErrCanceled) {
		t.Fatalf("%s: err = %v, want ErrCanceled", b.Name(), err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("%s: err should also match context.Canceled, got %v", b.Name(), err)
	}
	waitGoroutines(t, baseline)
}

func TestBraidBackendCancellation(t *testing.T) {
	testBackendCancellation(t, surfcomm.BraidBackend{})
}

func TestPlanarBackendCancellation(t *testing.T) {
	testBackendCancellation(t, surfcomm.PlanarBackend{})
}

func TestSurgeryBackendCancellation(t *testing.T) {
	testBackendCancellation(t, surfcomm.SurgeryBackend{})
}

// TestFigure6CancellationBounded cancels the Figure 6 grid from its
// first progress event and asserts the run aborts within a bounded
// number of cells, reports ErrCanceled, and drains its worker pool.
func TestFigure6CancellationBounded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	tc, err := surfcomm.NewToolchain(
		surfcomm.WithWorkers(2),
		surfcomm.WithProgress(func(ev surfcomm.Event) {
			events++ // serialized by the grid runner
			cancel()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	_, err = tc.Figure6(ctx, surfcomm.SweepFigure6Options{Distance: 9})
	if !errors.Is(err, surfcomm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	total := len(surfcomm.Fig6Suite()) * len(surfcomm.AllBraidPolicies)
	// Cancel fires at the first completion; only cells already in
	// flight on the 2 workers may still land.
	if events == 0 || events > 4 {
		t.Errorf("grid processed %d cells after cancellation, want 1..4 (grid size %d)", events, total)
	}
	waitGoroutines(t, baseline)
}

// TestGridPrecanceledRunsNoCells asserts a canceled context stops the
// grid before any cell executes.
func TestGridPrecanceledRunsNoCells(t *testing.T) {
	events := 0
	tc, err := surfcomm.NewToolchain(
		surfcomm.WithProgress(func(surfcomm.Event) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = tc.Models(ctx)
	if !errors.Is(err, surfcomm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if events != 0 {
		t.Errorf("%d cells ran under a pre-canceled context", events)
	}
}

// --- Sentinel errors across the facade. ---

func TestSentinelErrors(t *testing.T) {
	if _, err := surfcomm.NewToolchain(surfcomm.WithDistance(0)); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("WithDistance(0): %v, want ErrBadConfig", err)
	}
	if _, err := surfcomm.NewToolchain(surfcomm.WithPolicy(surfcomm.BraidPolicy(99))); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("WithPolicy(99): %v, want ErrBadConfig", err)
	}
	if _, err := surfcomm.NewToolchain(surfcomm.WithWorkers(-1)); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("WithWorkers(-1): %v, want ErrBadConfig", err)
	}

	c := surfcomm.NewCircuit("bad", 2)
	c.Append(surfcomm.OpCNOT, 0, 1)
	if _, err := surfcomm.SimulateBraids(c, surfcomm.BraidPolicy(42), surfcomm.BraidConfig{}); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("SimulateBraids bad policy: %v, want ErrBadConfig", err)
	}
	if _, err := surfcomm.ScheduleSIMD(c, surfcomm.SIMDConfig{Regions: 3}); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("ScheduleSIMD regions=3: %v, want ErrBadConfig", err)
	}

	if _, err := surfcomm.ModelFor(nil, "nope"); !errors.Is(err, surfcomm.ErrUnknownModel) {
		t.Errorf("ModelFor: %v, want ErrUnknownModel", err)
	}
	if _, err := surfcomm.Evaluate(syntheticModel("x"), 0.5, 1e-6); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("Evaluate K<1: %v, want ErrBadConfig", err)
	}
	if _, err := surfcomm.BackendByName("quantum-carrier-pigeon"); !errors.Is(err, surfcomm.ErrBadConfig) {
		t.Errorf("BackendByName: %v, want ErrBadConfig", err)
	}
}

// TestToolchainRunPipeline drives the Characterize→Compile→Cost path
// end to end for one workload.
func TestToolchainRunPipeline(t *testing.T) {
	var stages []string
	tc, err := surfcomm.NewToolchain(
		surfcomm.WithDistance(5),
		surfcomm.WithProgress(func(ev surfcomm.Event) { stages = append(stages, ev.Stage) }),
		surfcomm.WithTechnology(surfcomm.Superconducting(1e-5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	w := surfcomm.Workload{
		Name:    "IM",
		Circuit: surfcomm.Ising(surfcomm.IsingConfig{N: 16, Steps: 1}, true),
	}
	res, err := tc.Run(context.Background(), w, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 3 {
		t.Fatalf("want 3 plans, got %d", len(res.Plans))
	}
	names := map[string]bool{}
	for _, p := range res.Plans {
		names[p.Backend] = true
		if p.Cycles <= 0 || p.PhysicalQubits <= 0 {
			t.Errorf("%s: implausible plan %+v", p.Backend, p)
		}
	}
	for _, n := range []string{"braid", "planar", "surgery"} {
		if !names[n] {
			t.Errorf("missing plan for backend %q", n)
		}
	}
	if res.Point.SpaceTimeRatio <= 0 || res.Point.SurgeryVsPlanar <= 0 {
		t.Errorf("implausible design point: %+v", res.Point)
	}
	seen := map[string]bool{}
	for _, s := range stages {
		seen[s] = true
	}
	for _, s := range []string{"characterize", "compile", "cost"} {
		if !seen[s] {
			t.Errorf("pipeline emitted no %q event (events: %v)", s, stages)
		}
	}
}

// TestDecoderWorkerParity pins the decoder paths exposed through the
// Toolchain: the Monte Carlo failure count and the full validation grid
// must be bit-identical at every worker count (trial randomness is
// drawn sequentially from the seed; only decoding work is pooled).
func TestDecoderWorkerParity(t *testing.T) {
	ctx := context.Background()
	distances := []int{3, 5}
	rates := []float64{0.03, 0.08}
	var refResult surfcomm.DecoderResult
	var refGrid []surfcomm.SweepDecoderCell
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		tc, err := surfcomm.NewToolchain(surfcomm.WithWorkers(workers), surfcomm.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		r, err := tc.MeasureLogicalErrorRate(ctx, 5, 0.04, 500)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := tc.DecoderGrid(ctx, distances, rates, 200)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refResult, refGrid = r, grid
			if r.Failures == 0 {
				t.Error("expected some failures at d=5, p=0.04")
			}
			continue
		}
		if r != refResult {
			t.Errorf("workers=%d: result %+v diverged from serial %+v", workers, r, refResult)
		}
		if !reflect.DeepEqual(grid, refGrid) {
			t.Errorf("workers=%d: decoder grid diverged from serial run", workers)
		}
	}
}
