package surfcomm_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"surfcomm"
)

func batchSuite(t *testing.T) []surfcomm.CompileRequest {
	t.Helper()
	gse, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: 8, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	im, err := surfcomm.NewIsing(surfcomm.IsingConfig{N: 16, Steps: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []surfcomm.CompileRequest
	for _, c := range []*surfcomm.Circuit{gse, im} {
		for _, b := range []string{"braid", "planar", "surgery"} {
			reqs = append(reqs, surfcomm.CompileRequest{Backend: b, Circuit: c})
		}
	}
	return reqs
}

// TestCompileBatchWorkerInvariance is the batch acceptance property:
// the result slice is byte-identical (per-slot FNV plan digests) at
// workers 1, 4, and GOMAXPROCS, and slots stay in request order.
func TestCompileBatchWorkerInvariance(t *testing.T) {
	reqs := batchSuite(t)
	var reference []uint64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		tc, err := surfcomm.NewToolchain(
			surfcomm.WithDistance(5),
			surfcomm.WithWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		results := tc.CompileBatch(context.Background(), reqs)
		if len(results) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(results), len(reqs))
		}
		digests := make([]uint64, len(results))
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("workers=%d slot %d: %v", workers, i, res.Err)
			}
			if res.Plan.Backend != reqs[i].Backend {
				t.Errorf("workers=%d slot %d: backend %q, want %q (order broken)",
					workers, i, res.Plan.Backend, reqs[i].Backend)
			}
			if res.Plan.Circuit != reqs[i].Circuit.Name {
				t.Errorf("workers=%d slot %d: circuit %q, want %q (order broken)",
					workers, i, res.Plan.Circuit, reqs[i].Circuit.Name)
			}
			digests[i] = planDigest(res.Plan)
		}
		if reference == nil {
			reference = digests
			continue
		}
		for i := range digests {
			if digests[i] != reference[i] {
				t.Errorf("workers=%d slot %d: digest %x, serial reference %x",
					workers, i, digests[i], reference[i])
			}
		}
	}
}

// TestCompileBatchPerRequestErrors pins error isolation: failing
// requests land in their slots, classifiable with errors.Is, and never
// abort the rest of the batch.
func TestCompileBatchPerRequestErrors(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5))
	if err != nil {
		t.Fatal(err)
	}
	good, err := surfcomm.NewGSE(surfcomm.GSEConfig{M: 8, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := tc.CompileBatch(context.Background(), []surfcomm.CompileRequest{
		{Backend: "nope", Circuit: good},
		{Backend: "braid", Circuit: nil},
		{Backend: "braid", Circuit: good},
		{Backend: "planar", Circuit: good, Override: func(t *surfcomm.Target) { t.Distance = -1 }},
	})
	for _, i := range []int{0, 1, 3} {
		if !errors.Is(results[i].Err, surfcomm.ErrBadConfig) {
			t.Errorf("slot %d error = %v, want ErrBadConfig", i, results[i].Err)
		}
	}
	if results[2].Err != nil {
		t.Errorf("slot 2 should succeed, got %v", results[2].Err)
	}
	if results[2].Plan.Cycles <= 0 {
		t.Errorf("slot 2 plan empty: %+v", results[2].Plan)
	}
}

// TestCompileBatchCanceled pins the shutdown path: a canceled context
// marks every unprocessed slot with an error matching ErrCanceled.
func TestCompileBatchCanceled(t *testing.T) {
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := tc.CompileBatch(ctx, batchSuite(t))
	for i, res := range results {
		if !errors.Is(res.Err, surfcomm.ErrCanceled) {
			t.Errorf("slot %d error = %v, want ErrCanceled", i, res.Err)
		}
	}
}
