package surfcomm_test

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"surfcomm"
)

// planDigest FNV-hashes the externally visible identity of a Plan: the
// schedule metrics plus (for braid-family backends) every recorded
// path. Two plans with equal digests compiled bit-identically.
func planDigest(p surfcomm.Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d/%d/%g/%d:", p.Backend, p.Circuit, p.Distance, p.Seed,
		p.Cycles, p.PhysicalQubits, p.CommOps)
	if p.Braid != nil {
		for _, e := range p.Braid.Schedule {
			fmt.Fprintf(h, "%d/%d/%d/%d/%d:", e.Op, e.Kind, e.Start, e.End, e.Factory)
			for _, n := range e.Path {
				fmt.Fprintf(h, "(%d,%d)", n.Row, n.Col)
			}
		}
	}
	if p.EPR != nil {
		fmt.Fprintf(h, "epr:%d/%d/%d/%d", p.EPR.StallCycles, p.EPR.PeakLiveEPR,
			p.EPR.TotalPairs, p.EPR.ScheduleCycles)
	}
	return h.Sum64()
}

// TestEveryBackendPerfectDeviceBitIdentical is the acceptance property:
// each backend compiled with WithDevice(PerfectDevice()) produces an
// FNV-identical plan to the deviceless toolchain.
func TestEveryBackendPerfectDeviceBitIdentical(t *testing.T) {
	ctx := context.Background()
	base, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1),
		surfcomm.WithDevice(surfcomm.PerfectDevice()))
	if err != nil {
		t.Fatal(err)
	}
	c := surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})
	record := func(tg *surfcomm.Target) { tg.RecordSchedule = true }
	for _, b := range surfcomm.Backends() {
		pb, err := base.Compile(ctx, b, c, record)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		pp, err := perfect.Compile(ctx, b, c, record)
		if err != nil {
			t.Fatalf("%s on perfect device: %v", b.Name(), err)
		}
		if planDigest(pb) != planDigest(pp) {
			t.Errorf("%s: perfect-device plan digest %x != baseline %x",
				b.Name(), planDigest(pp), planDigest(pb))
		}
		if pp.Device != "perfect" {
			t.Errorf("%s: plan device = %q, want perfect", b.Name(), pp.Device)
		}
	}
}

// TestEveryBackendUnroutable is the acceptance criterion: on a fully
// disconnected device every backend returns an error matching
// ErrUnroutable — not a hang, not a panic.
func TestEveryBackendUnroutable(t *testing.T) {
	ctx := context.Background()
	disconnected := surfcomm.CustomDevice("no-links", 0,
		func(topo *surfcomm.DeviceTopology, _ *rand.Rand) {
			for r := 0; r < topo.Rows(); r++ {
				for c := 0; c < topo.Cols(); c++ {
					topo.DisableLink(surfcomm.Coord{Row: r, Col: c}, surfcomm.Coord{Row: r, Col: c + 1})
					topo.DisableLink(surfcomm.Coord{Row: r, Col: c}, surfcomm.Coord{Row: r + 1, Col: c})
				}
			}
		})
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1),
		surfcomm.WithDevice(disconnected))
	if err != nil {
		t.Fatal(err)
	}
	c := surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})
	for _, b := range surfcomm.Backends() {
		_, err := tc.Compile(ctx, b, c)
		if !errors.Is(err, surfcomm.ErrUnroutable) {
			t.Errorf("%s: err = %v, want ErrUnroutable", b.Name(), err)
		}
	}
}

// TestDefectiveDeviceCompiles smoke-tests the whole pipeline on a
// moderately defective device: braid and surgery compile (or report
// unroutable), plans name the device, and planar either routes around
// the defects or fails fast.
func TestDefectiveDeviceCompiles(t *testing.T) {
	ctx := context.Background()
	dev := surfcomm.RandomYieldDevice(0.04, 3)
	tc, err := surfcomm.NewToolchain(surfcomm.WithDistance(5), surfcomm.WithSeed(1),
		surfcomm.WithDevice(dev))
	if err != nil {
		t.Fatal(err)
	}
	c := surfcomm.GSE(surfcomm.GSEConfig{M: 10, Steps: 2})
	for _, b := range surfcomm.Backends() {
		plan, err := tc.Compile(ctx, b, c)
		if errors.Is(err, surfcomm.ErrUnroutable) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if plan.Device != dev.String() {
			t.Errorf("%s: plan device %q, want %q", b.Name(), plan.Device, dev)
		}
		if plan.Cycles <= 0 {
			t.Errorf("%s: empty schedule", b.Name())
		}
	}
}

// TestYieldGridViaToolchain runs the yield study through the facade and
// checks worker-count invariance end to end.
func TestYieldGridViaToolchain(t *testing.T) {
	ctx := context.Background()
	yopt := surfcomm.SweepYieldOptions{Distance: 5, Fractions: []float64{0, 0.02}, Trials: 2}
	run := func(workers int) []surfcomm.SweepYieldCell {
		tc, err := surfcomm.NewToolchain(surfcomm.WithSeed(1), surfcomm.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		cells, err := tc.YieldGrid(ctx, yopt)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	serial, parallel := run(1), run(4)
	if len(serial) != 4 || len(parallel) != 4 {
		t.Fatalf("cell counts: %d, %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
