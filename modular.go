package surfcomm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
	"surfcomm/internal/modcompile"
	"surfcomm/internal/scerr"
	"surfcomm/internal/surface"
)

// ModuleCache stores compiled module plans keyed by their content
// digest. Implementations must be safe for concurrent use; the driver
// probes it before the parallel module-compile phase and fills it
// after. The serving layer backs it with its LRU + disk store; the
// WithModular option installs an in-process map for library callers.
type ModuleCache interface {
	GetModule(digest string) (Plan, bool)
	PutModule(digest string, p Plan)
}

// memoryModuleCache is the WithModular default: an unbounded
// process-local map. Module plans are small (no recorded schedules),
// so a map suffices for interactive edit-recompile loops; serving
// deployments use the service's weighted LRU instead.
type memoryModuleCache struct {
	mu sync.Mutex
	m  map[string]Plan
}

func newMemoryModuleCache() *memoryModuleCache {
	return &memoryModuleCache{m: map[string]Plan{}}
}

func (c *memoryModuleCache) GetModule(digest string) (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[digest]
	return p, ok
}

func (c *memoryModuleCache) PutModule(digest string, p Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[digest] = p
}

// WithModular arms the toolchain's hierarchical compile path with a
// fresh in-process module cache, so successive CompileIncremental
// calls on edited variants of a program reuse every unchanged module.
// Serving layers that need bounded or persistent caching install their
// own store via CloneWithModuleCache instead.
func WithModular() ToolchainOption {
	return func(tc *Toolchain) error {
		tc.modCache = newMemoryModuleCache()
		return nil
	}
}

// CloneWithModuleCache returns a copy of the toolchain whose
// CompileIncremental uses mc as the module-plan store, sharing every
// other setting. A nil mc disables module reuse (every module
// compiles each call).
func (tc *Toolchain) CloneWithModuleCache(mc ModuleCache) *Toolchain {
	cp := *tc
	cp.modCache = mc
	return &cp
}

// ModuleSummary is one module's linked outcome inside a ModularResult.
type ModuleSummary struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Cycles int64  `json:"cycles"`
	// Cached marks a plan served from the module cache; Trivial marks a
	// call-only module synthesized without a backend compile.
	Cached  bool `json:"cached,omitempty"`
	Trivial bool `json:"trivial,omitempty"`
}

// ModularResult is the hierarchical compile's provenance: which
// modules the program linked from, which were reused versus recompiled,
// and what the stitching pass cost. It rides on Plan.Modular; flat and
// fast-path compiles leave it nil.
type ModularResult struct {
	// Entry is the program's entry module.
	Entry string `json:"entry"`
	// Modules lists every reachable module in topological order
	// (callees before callers, entry last).
	Modules []ModuleSummary `json:"modules"`
	// Hits/Misses count module-cache probes; Trivial counts call-only
	// modules that never reach a backend.
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	Trivial int `json:"trivial"`
	// Compiled names the modules that went through the backend this
	// call, in topological order.
	Compiled []string `json:"compiled,omitempty"`
	// LinkDigest identifies the linked artifact (folds every module's
	// content digest plus the target fingerprint).
	LinkDigest string `json:"link_digest"`
	// Stitch-layer diagnostics: routing phases the cross-module
	// channels packed into, mesh links they reserved, dynamic call
	// executions and per-qubit cross-module braids, and the schedule
	// cycles the call fences cost.
	StitchPhases     int   `json:"stitch_phases"`
	StitchRouteLinks int   `json:"stitch_route_links"`
	CallExecutions   int64 `json:"call_executions"`
	CrossBraids      int64 `json:"cross_braids"`
	StitchCycles     int64 `json:"stitch_cycles"`
}

// targetFingerprint folds every plan-affecting knob of a resolved
// target (everything the serving layer's digest covers except the
// circuit text) so module digests separate by backend and target.
func targetFingerprint(backend string, t Target) string {
	h := sha256.New()
	fmt.Fprintf(h, "backend=%s\n", backend)
	fmt.Fprintf(h, "d=%d policy=%d seed=%d window=%d bw=%d local=%t record=%t\n",
		t.Distance, int(t.Policy), t.Seed, t.Window, t.LinkBandwidth, t.LocalTOps, t.RecordSchedule)
	fmt.Fprintf(h, "tech=%g/%g/%g/%g/%g/%g\n",
		t.Technology.PhysicalErrorRate, t.Technology.Threshold, t.Technology.Prefactor,
		t.Technology.Gate1Q, t.Technology.Gate2Q, t.Technology.Meas)
	fmt.Fprintf(h, "simd=%d/%d/%d/%t\n", t.SIMD.Regions, t.SIMD.Width, t.SIMD.Seed, t.SIMD.NaiveBanks)
	fmt.Fprintf(h, "device=%s\n", t.Device.String())
	return hex.EncodeToString(h.Sum(nil))
}

// CompileIncremental lowers a hierarchical program onto one backend,
// compiling each module as an independently cached unit and linking
// the module plans with the stitching pass (module patches placed by
// the partition/layout optimizers, cross-module braids routed on a
// channel mesh). The returned Plan's Modular field records per-module
// provenance — cache hits, recompiled modules, stitch costs.
//
// Programs whose entry makes no calls take the monolithic fast path
// (flatten + Compile) and return a Plan byte-identical to the flat
// pipeline's, with Modular nil — single-module programs cost nothing
// for opting in.
//
// Module plans are reused through the toolchain's module cache (see
// WithModular / CloneWithModuleCache). A module's digest covers its
// canonical body, the resolved target, and its callees' *interfaces*
// (name and width only), so editing one leaf module recompiles only
// that leaf plus the cheap stitch layer — ancestors and sibling
// subtrees are served from cache.
func (tc *Toolchain) CompileIncremental(ctx context.Context, b Backend, p *Program, override ...func(*Target)) (Plan, error) {
	if b == nil {
		return Plan{}, scerr.BadConfig("toolchain: nil backend")
	}
	if p == nil {
		return Plan{}, scerr.BadConfig("toolchain: nil program")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, scerr.BadConfig("%v", err)
	}
	if p.CallTreeHeight() == 0 {
		// Monolithic fast path: no calls to stitch. Flatten is the
		// identity on a single flat module, so the plan — and its
		// digest — matches the pre-modular pipeline exactly.
		flat, err := p.Flatten(circuit.InlineAll)
		if err != nil {
			return Plan{}, scerr.BadConfig("%v", err)
		}
		return tc.Compile(ctx, b, flat, override...)
	}

	target := tc.Target()
	for _, fn := range override {
		fn(&target)
	}
	// Module compiles resolve their own placements: a program-level
	// placement override describes entry-module qubits, which don't
	// exist inside a module patch.
	modTarget := target
	modTarget.Placement = nil

	fp := targetFingerprint(b.Name(), modTarget)
	channel := float64(surface.DoubleDefectTileQubits(targetDistance(target)))
	if b.Name() == "planar" {
		channel = float64(surface.PlanarTileQubits(targetDistance(target)))
	}

	res, err := modcompile.Run(ctx, p, modcompile.Config{
		Workers:              tc.workers,
		TargetFingerprint:    fp,
		Distance:             targetDistance(target),
		ChannelQubitsPerLink: channel,
		Seed:                 tc.seed,
		Cache:                moduleCacheAdapter{tc.modCache},
		Stitch:               tc.stitchMemo,
		Compile: func(ctx context.Context, c *Circuit) (modcompile.ModulePlan, error) {
			t := modTarget
			plan, err := b.Compile(ctx, c, &t)
			if err != nil {
				return modcompile.ModulePlan{}, err
			}
			return modcompile.ModulePlan{
				Cycles:         plan.Cycles,
				PhysicalQubits: plan.PhysicalQubits,
				CommOps:        plan.CommOps,
				Payload:        plan,
			}, nil
		},
	})
	if err != nil {
		return Plan{}, fmt.Errorf("toolchain: %s: %w", b.Name(), err)
	}

	mr := &ModularResult{
		Entry:            res.Entry,
		Hits:             res.Hits,
		Misses:           res.Misses,
		Trivial:          res.Trivial,
		Compiled:         res.Compiled,
		LinkDigest:       res.LinkDigest,
		StitchPhases:     res.Stitch.Phases,
		StitchRouteLinks: res.Stitch.RouteLinks,
		CallExecutions:   res.Stitch.CallExecutions,
		CrossBraids:      res.Stitch.CrossBraids,
		StitchCycles:     res.Stitch.StitchCycles,
	}
	for _, name := range res.Topo {
		mp := res.Plans[name]
		mr.Modules = append(mr.Modules, ModuleSummary{
			Name: mp.Name, Digest: mp.Digest, Cycles: mp.Cycles,
			Cached: mp.Cached, Trivial: mp.Trivial,
		})
	}
	plan := Plan{
		Backend:        b.Name(),
		Circuit:        p.Entry,
		Distance:       targetDistance(target),
		Seed:           modTarget.Seed,
		Device:         target.Device.String(),
		Cycles:         res.Cycles,
		Seconds:        float64(res.Cycles) * resolvedTechnology(target).SyndromeCycleTime(),
		PhysicalQubits: res.PhysicalQubits,
		CommOps:        res.CommOps,
		Modular:        mr,
	}
	tc.emit(Event{Stage: "compile", Backend: b.Name(), Cell: p.Entry, Total: 1})
	return plan, nil
}

// targetDistance mirrors Target.withDefaults for the one field the
// linker prices directly.
func targetDistance(t Target) int {
	if t.Distance == 0 {
		return 9
	}
	return t.Distance
}

// resolvedTechnology mirrors Target.withDefaults for cycle-time
// conversion.
func resolvedTechnology(t Target) Technology {
	if t.Technology == (Technology{}) {
		return Superconducting(1e-8)
	}
	return t.Technology
}

// moduleCacheAdapter bridges the public ModuleCache (Plan values) to
// the driver's payload-opaque cache interface. A nil inner cache
// disables reuse.
type moduleCacheAdapter struct{ mc ModuleCache }

func (a moduleCacheAdapter) GetModule(digest string) (modcompile.ModulePlan, bool) {
	if a.mc == nil {
		return modcompile.ModulePlan{}, false
	}
	plan, ok := a.mc.GetModule(digest)
	if !ok {
		return modcompile.ModulePlan{}, false
	}
	return modcompile.ModulePlan{
		Cycles:         plan.Cycles,
		PhysicalQubits: plan.PhysicalQubits,
		CommOps:        plan.CommOps,
		Payload:        plan,
	}, true
}

func (a moduleCacheAdapter) PutModule(mp modcompile.ModulePlan) {
	if a.mc == nil {
		return
	}
	if plan, ok := mp.Payload.(Plan); ok {
		a.mc.PutModule(mp.Digest, plan)
	}
}

// --- Hierarchical QASM interchange ---

// WriteProgramQASM serializes a hierarchical program in the module-
// extended QASM dialect (entry/module/call directives). Emission is
// canonical: equal programs serialize to equal bytes.
func WriteProgramQASM(w io.Writer, p *Program) error { return circuit.WriteProgramQASM(w, p) }

// ReadProgramQASM parses the module-extended QASM dialect, validating
// the program (calls resolve, arities match, no recursion).
func ReadProgramQASM(r io.Reader) (*Program, error) { return circuit.ReadProgramQASM(r) }

// ProgramQASMString renders a program as a canonical QASM string.
func ProgramQASMString(p *Program) string { return circuit.ProgramQASMString(p) }

// LooksHierarchicalQASM reports whether QASM text uses the module-
// extended dialect (vs the flat dialect).
func LooksHierarchicalQASM(text string) bool { return circuit.LooksHierarchicalQASM(text) }

// NewProgram returns a program with a single empty entry module over n
// qubits.
func NewProgram(entry string, n int) *Program { return circuit.NewProgram(entry, n) }

// Module is one reusable subcircuit of a hierarchical Program.
type Module = circuit.Module

// ModuleInst is one instruction inside a Module: a local gate or a
// call binding qubits to another module's formals.
type ModuleInst = circuit.Inst

// PipelineProgram builds the n-stage hierarchical pipeline workload:
// distinct-bodied 8-qubit stage modules called over overlapping qubit
// windows — the corpus the incremental-compilation benchmarks edit one
// module of and recompile.
func PipelineProgram(n int) (*Program, error) { return apps.PipelineProgram(n) }

// MutateModule returns a deep copy of the program with one module's
// body extended by a deterministic, variant-keyed edit (its interface
// is unchanged, so only that module's digest goes dirty).
func MutateModule(p *Program, name string, variant int) (*Program, error) {
	return apps.MutateModule(p, name, variant)
}
