// Command scflow runs the compilation frontend over the benchmark
// applications and prints the paper's characterization tables: the
// communication-method comparison (Table 1, measured from both backend
// simulators) and the application summary with parallelism factors
// (Table 2).
//
// The measurements run through a shared surfcomm.Toolchain (-seed,
// -workers); `-json FILE` emits every table row as a machine-readable
// record, and an interrupt (Ctrl-C) cancels mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"surfcomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scflow: ")
	table1 := flag.Bool("table1", false, "print only the Table 1 communication comparison")
	table2 := flag.Bool("table2", false, "print only the Table 2 application summary")
	seed := flag.Int64("seed", 1, "layout/partition seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := flag.String("json", "", "write table rows to this JSON file")
	flag.Parse()
	both := !*table1 && !*table2

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tc, err := surfcomm.NewToolchain(
		surfcomm.WithSeed(*seed),
		surfcomm.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}

	var records []surfcomm.SweepCellResult
	if *table1 || both {
		if err := printTable1(ctx, tc, &records); err != nil {
			log.Fatal(err)
		}
	}
	if both {
		fmt.Println()
	}
	if *table2 || both {
		if err := printTable2(ctx, tc, &records); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := surfcomm.WriteSweepRecordsFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d rows to %s", len(records), *jsonPath)
	}
}

// printTable1 measures the defining properties of the two communication
// methods: braid latency is distance-independent (low time) but braids
// claim whole routes and bigger tiles (high space, not prefetchable);
// teleportation transit grows with distance (high time) but vanishes
// under EPR prefetch.
func printTable1(ctx context.Context, tc *surfcomm.Toolchain, records *[]surfcomm.SweepCellResult) error {
	const d = 9

	braidCycles := func(cols, a, b int) (int64, error) {
		c := surfcomm.NewCircuit("pair", cols)
		c.Append(surfcomm.OpCNOT, a, b)
		place := surfcomm.RowMajorPlacement(cols)
		plan, err := tc.Compile(ctx, surfcomm.BraidBackend{}, c, func(t *surfcomm.Target) {
			t.Distance = d
			t.Policy = surfcomm.Policy1
			t.Placement = place
		})
		if err != nil {
			return 0, err
		}
		return plan.Cycles, nil
	}
	nearBraid, err := braidCycles(8, 0, 1)
	if err != nil {
		return err
	}
	farBraid, err := braidCycles(8, 0, 7)
	if err != nil {
		return err
	}

	// The EPR factory sits at the bottom-right of the region grid; a
	// "near" pair adjoins it, a "far" pair sits at the opposite corner.
	teleportStall := func(from, to int, window int64) (int64, error) {
		sched := &surfcomm.SIMDSchedule{
			Config:    surfcomm.SIMDConfig{Regions: 16, Width: 8},
			Timesteps: 8,
			Moves:     []surfcomm.SIMDMove{{Timestep: 5, Qubit: 0, From: from, To: to}},
		}
		r, err := surfcomm.DistributeEPR(sched, window, surfcomm.TeleportConfig{Distance: d})
		if err != nil {
			return 0, err
		}
		return r.StallCycles, nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	nearTele, err := teleportStall(14, 15, 0)
	if err != nil {
		return err
	}
	farTele, err := teleportStall(0, 1, 0)
	if err != nil {
		return err
	}
	hiddenTele, err := teleportStall(0, 1, surfcomm.PrefetchAll)
	if err != nil {
		return err
	}

	fmt.Printf("Table 1: communication-method tradeoffs (measured, d = %d)\n", d)
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-14s %-22s %-28s %s\n", "Method", "Space (qubits/tile)", "Time (EC cycles)", "Prefetchable?")
	fmt.Printf("%-14s %-22d transit near=%-3d far=%-6d yes (JIT stall=%d)\n",
		"Teleportation", surfcomm.PlanarTileQubits(d), nearTele, farTele, hiddenTele)
	fmt.Printf("%-14s %-22d braid   near=%-3d far=%-6d no (claims whole route)\n",
		"Braiding", surfcomm.DoubleDefectTileQubits(d), nearBraid, farBraid)
	fmt.Println()
	fmt.Println("Planar/teleport: low space, distance-dependent latency, prefetchable.")
	fmt.Println("Double-defect/braid: high space, distance-independent latency, not prefetchable.")

	*records = append(*records,
		surfcomm.SweepCellResult{Study: "table1", Cell: "teleportation", Seed: tc.Seed(),
			Metrics: map[string]float64{
				"tile_qubits": float64(surfcomm.PlanarTileQubits(d)),
				"near_cycles": float64(nearTele),
				"far_cycles":  float64(farTele),
				"jit_stall":   float64(hiddenTele),
			}},
		surfcomm.SweepCellResult{Study: "table1", Cell: "braiding", Seed: tc.Seed(),
			Metrics: map[string]float64{
				"tile_qubits": float64(surfcomm.DoubleDefectTileQubits(d)),
				"near_cycles": float64(nearBraid),
				"far_cycles":  float64(farBraid),
			}},
	)
	return nil
}

func printTable2(ctx context.Context, tc *surfcomm.Toolchain, records *[]surfcomm.SweepCellResult) error {
	workloads := surfcomm.Table2Suite()
	estimates, err := tc.Estimate(ctx, workloads)
	if err != nil {
		return err
	}
	fmt.Println("Table 2: benchmark applications (measured)")
	fmt.Println("------------------------------------------------------------------------------------------")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %-12s %s\n",
		"App", "Qubits", "Ops", "T-count", "2q ops", "Depth", "Parallelism")
	for i, w := range workloads {
		e := estimates[i]
		fmt.Printf("%-8s %-10d %-10d %-10d %-10d %-12d %.1f\n",
			w.Name, e.LogicalQubits, e.LogicalOps, e.TCount, e.TwoQubitOps, e.CriticalPath, e.Parallelism)
		*records = append(*records, surfcomm.SweepCellResult{
			Study: "table2", Cell: w.Name, Seed: tc.Seed(),
			Metrics: map[string]float64{
				"qubits":      float64(e.LogicalQubits),
				"ops":         float64(e.LogicalOps),
				"t_count":     float64(e.TCount),
				"two_q_ops":   float64(e.TwoQubitOps),
				"depth":       float64(e.CriticalPath),
				"parallelism": e.Parallelism,
			},
		})
	}
	fmt.Println()
	fmt.Println("Paper's parallelism factors: GSE 1.2, SQ 1.5, SHA-1 29, IM 66.")
	return nil
}
