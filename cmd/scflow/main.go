// Command scflow runs the compilation frontend over the benchmark
// applications and prints the paper's characterization tables: the
// communication-method comparison (Table 1, measured from both backend
// simulators) and the application summary with parallelism factors
// (Table 2).
package main

import (
	"flag"
	"fmt"
	"log"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
	"surfcomm/internal/circuit"
	"surfcomm/internal/layout"
	"surfcomm/internal/resource"
	"surfcomm/internal/simd"
	"surfcomm/internal/surface"
	"surfcomm/internal/teleport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scflow: ")
	table1 := flag.Bool("table1", false, "print only the Table 1 communication comparison")
	table2 := flag.Bool("table2", false, "print only the Table 2 application summary")
	flag.Parse()
	both := !*table1 && !*table2

	if *table1 || both {
		if err := printTable1(); err != nil {
			log.Fatal(err)
		}
	}
	if both {
		fmt.Println()
	}
	if *table2 || both {
		if err := printTable2(); err != nil {
			log.Fatal(err)
		}
	}
}

// printTable1 measures the defining properties of the two communication
// methods: braid latency is distance-independent (low time) but braids
// claim whole routes and bigger tiles (high space, not prefetchable);
// teleportation transit grows with distance (high time) but vanishes
// under EPR prefetch.
func printTable1() error {
	const d = 9

	braidCycles := func(cols, a, b int) (int64, error) {
		c := circuit.New("pair", cols)
		c.Append(circuit.CNOT, a, b)
		place := layout.RowMajor(cols)
		r, err := braid.Simulate(c, braid.Policy1, braid.Config{Distance: d, Placement: place})
		if err != nil {
			return 0, err
		}
		return r.ScheduleCycles, nil
	}
	nearBraid, err := braidCycles(8, 0, 1)
	if err != nil {
		return err
	}
	farBraid, err := braidCycles(8, 0, 7)
	if err != nil {
		return err
	}

	// The EPR factory sits at the bottom-right of the region grid; a
	// "near" pair adjoins it, a "far" pair sits at the opposite corner.
	teleportStall := func(from, to int, window int64) (int64, error) {
		sched := &simd.Schedule{
			Config:    simd.Config{Regions: 16, Width: 8},
			Timesteps: 8,
			Moves:     []simd.Move{{Timestep: 5, Qubit: 0, From: from, To: to}},
		}
		r, err := teleport.Distribute(sched, window, teleport.Config{Distance: d})
		if err != nil {
			return 0, err
		}
		return r.StallCycles, nil
	}
	nearTele, err := teleportStall(14, 15, 0)
	if err != nil {
		return err
	}
	farTele, err := teleportStall(0, 1, 0)
	if err != nil {
		return err
	}
	hiddenTele, err := teleportStall(0, 1, teleport.PrefetchAll)
	if err != nil {
		return err
	}

	fmt.Printf("Table 1: communication-method tradeoffs (measured, d = %d)\n", d)
	fmt.Println("----------------------------------------------------------------------")
	fmt.Printf("%-14s %-22s %-28s %s\n", "Method", "Space (qubits/tile)", "Time (EC cycles)", "Prefetchable?")
	fmt.Printf("%-14s %-22d transit near=%-3d far=%-6d yes (JIT stall=%d)\n",
		"Teleportation", surface.PlanarTileQubits(d), nearTele, farTele, hiddenTele)
	fmt.Printf("%-14s %-22d braid   near=%-3d far=%-6d no (claims whole route)\n",
		"Braiding", surface.DoubleDefectTileQubits(d), nearBraid, farBraid)
	fmt.Println()
	fmt.Println("Planar/teleport: low space, distance-dependent latency, prefetchable.")
	fmt.Println("Double-defect/braid: high space, distance-independent latency, not prefetchable.")
	return nil
}

func printTable2() error {
	fmt.Println("Table 2: benchmark applications (measured)")
	fmt.Println("------------------------------------------------------------------------------------------")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %-12s %s\n",
		"App", "Qubits", "Ops", "T-count", "2q ops", "Depth", "Parallelism")
	for _, w := range apps.Table2Suite() {
		e, err := resource.EstimateCircuit(w.Circuit)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-10d %-10d %-10d %-10d %-12d %.1f\n",
			w.Name, e.LogicalQubits, e.LogicalOps, e.TCount, e.TwoQubitOps, e.CriticalPath, e.Parallelism)
	}
	fmt.Println()
	fmt.Println("Paper's parallelism factors: GSE 1.2, SQ 1.5, SHA-1 29, IM 66.")
	return nil
}
