// Command qasm emits the benchmark applications in the toolchain's flat
// QASM dialect for inspection or interchange, or parses a QASM file and
// reports its frontend statistics.
//
//	qasm -app IM -n 16 -steps 1 > im.qasm
//	qasm -stats im.qasm
//
// Like the other commands, it takes the unified -seed/-json flags:
// `-json FILE` writes the frontend-statistics record of the generated
// circuit (or of every -stats file) in the BENCH_*.json cell format,
// stamped with -seed. A malformed size (e.g. an odd -n for SQ) exits 1
// with the validation error instead of crashing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"surfcomm"
)

// validApps names the -app values in help order.
const validApps = "GSE, SQ, SHA-1, IM, IM-semi"

func main() {
	log.SetFlags(0)
	log.SetPrefix("qasm: ")
	app := flag.String("app", "", "application to emit: "+validApps)
	n := flag.Int("n", 8, "problem size (GSE molecule size, SQ bits, IM spins)")
	steps := flag.Int("steps", 1, "Trotter steps (GSE, IM)")
	iters := flag.Int("iters", 1, "Grover iterations (SQ)")
	rounds := flag.Int("rounds", 1, "compression rounds (SHA-1)")
	width := flag.Int("width", 16, "word width (SHA-1)")
	stats := flag.Bool("stats", false, "read QASM files from args and print frontend statistics")
	seed := flag.Int64("seed", 1, "seed stamped into -json records")
	jsonPath := flag.String("json", "", "write frontend-statistics records to this JSON file")
	flag.Parse()

	var records []surfcomm.SweepCellResult

	if *stats {
		if flag.NArg() == 0 {
			log.Fatal("-stats needs at least one QASM file")
		}
		for _, path := range flag.Args() {
			est, err := fileStats(path)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %s\n", path, est)
			// Key the cell by file path: circuit names are optional in
			// QASM (and may collide across files).
			records = append(records, record(*seed, path, est))
		}
	} else {
		c, err := generate(*app, *n, *steps, *iters, *rounds, *width)
		if err != nil {
			log.Fatal(err)
		}
		if err := surfcomm.WriteQASM(os.Stdout, c); err != nil {
			log.Fatal(err)
		}
		if *jsonPath != "" {
			est, err := surfcomm.EstimateCircuit(c)
			if err != nil {
				log.Fatal(err)
			}
			records = append(records, record(*seed, est.Name, est))
		}
	}

	if *jsonPath != "" {
		if err := surfcomm.WriteSweepRecordsFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d records to %s", len(records), *jsonPath)
	}
}

// generate builds the selected application through the validating
// constructors, so a malformed size returns an error (exit 1) instead
// of panicking.
func generate(app string, n, steps, iters, rounds, width int) (*surfcomm.Circuit, error) {
	switch strings.ToUpper(app) {
	case "GSE":
		return surfcomm.NewGSE(surfcomm.GSEConfig{M: n, Steps: steps})
	case "SQ":
		return surfcomm.NewSQ(surfcomm.SQConfig{N: n, Iters: iters})
	case "SHA-1", "SHA1":
		return surfcomm.NewSHA1(surfcomm.SHA1Config{Rounds: rounds, WordWidth: width})
	case "IM":
		return surfcomm.NewIsing(surfcomm.IsingConfig{N: n, Steps: steps}, true)
	case "IM-SEMI":
		return surfcomm.NewIsing(surfcomm.IsingConfig{N: n, Steps: steps}, false)
	case "":
		return nil, fmt.Errorf("choose an application with -app (%s)", validApps)
	}
	return nil, fmt.Errorf("unknown application %q (valid: %s)", app, validApps)
}

func fileStats(path string) (surfcomm.Estimate, error) {
	f, err := os.Open(path)
	if err != nil {
		return surfcomm.Estimate{}, err
	}
	defer f.Close()
	c, err := surfcomm.ReadQASM(f)
	if err != nil {
		return surfcomm.Estimate{}, fmt.Errorf("%s: %w", path, err)
	}
	est, err := surfcomm.EstimateCircuit(c)
	if err != nil {
		return surfcomm.Estimate{}, fmt.Errorf("%s: %w", path, err)
	}
	return est, nil
}

// record converts a frontend estimate to the shared cell format.
func record(seed int64, cell string, est surfcomm.Estimate) surfcomm.SweepCellResult {
	return surfcomm.SweepCellResult{
		Study:  "frontend",
		Cell:   cell,
		Seed:   seed,
		Device: "perfect",
		Metrics: map[string]float64{
			"logical_qubits": float64(est.LogicalQubits),
			"logical_ops":    float64(est.LogicalOps),
			"t_count":        float64(est.TCount),
			"two_qubit_ops":  float64(est.TwoQubitOps),
			"critical_path":  float64(est.CriticalPath),
			"parallelism":    est.Parallelism,
		},
	}
}
