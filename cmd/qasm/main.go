// Command qasm emits the benchmark applications in the toolchain's flat
// QASM dialect for inspection or interchange, or parses a QASM file and
// reports its frontend statistics.
//
//	qasm -app IM -n 16 -steps 1 > im.qasm
//	qasm -stats im.qasm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"surfcomm/internal/apps"
	"surfcomm/internal/circuit"
	"surfcomm/internal/resource"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qasm: ")
	app := flag.String("app", "", "application to emit: GSE, SQ, SHA-1, IM, IM-semi")
	n := flag.Int("n", 8, "problem size (GSE molecule size, SQ bits, IM spins)")
	steps := flag.Int("steps", 1, "Trotter steps (GSE, IM)")
	iters := flag.Int("iters", 1, "Grover iterations (SQ)")
	rounds := flag.Int("rounds", 1, "compression rounds (SHA-1)")
	width := flag.Int("width", 16, "word width (SHA-1)")
	stats := flag.Bool("stats", false, "read QASM files from args and print frontend statistics")
	flag.Parse()

	if *stats {
		if flag.NArg() == 0 {
			log.Fatal("-stats needs at least one QASM file")
		}
		for _, path := range flag.Args() {
			if err := printStats(path); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	c, err := generate(*app, *n, *steps, *iters, *rounds, *width)
	if err != nil {
		log.Fatal(err)
	}
	if err := circuit.WriteQASM(os.Stdout, c); err != nil {
		log.Fatal(err)
	}
}

func generate(app string, n, steps, iters, rounds, width int) (*circuit.Circuit, error) {
	switch strings.ToUpper(app) {
	case "GSE":
		return apps.GSE(apps.GSEConfig{M: n, Steps: steps}), nil
	case "SQ":
		return apps.SQ(apps.SQConfig{N: n, Iters: iters}), nil
	case "SHA-1", "SHA1":
		return apps.SHA1(apps.SHA1Config{Rounds: rounds, WordWidth: width}), nil
	case "IM":
		return apps.Ising(apps.IsingConfig{N: n, Steps: steps}, true), nil
	case "IM-SEMI":
		return apps.Ising(apps.IsingConfig{N: n, Steps: steps}, false), nil
	case "":
		return nil, fmt.Errorf("choose an application with -app (GSE, SQ, SHA-1, IM, IM-semi)")
	}
	return nil, fmt.Errorf("unknown application %q", app)
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := circuit.ReadQASM(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	est, err := resource.EstimateCircuit(c)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: %s\n", path, est)
	return nil
}
