package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"surfcomm"
)

// The -modular study behind BENCH_modular.json: for each pipeline size
// N it compiles the N-stage hierarchical workload three ways —
// monolithic (flatten + full compile), cold incremental (every module
// dirty), and warm incremental after a one-leaf edit — and records how
// much compilation the module cache saved.
//
// Two metric families live in each cell:
//
//   - deterministic fields (module counts, cache hits, work-op totals,
//     stitch diagnostics, speedup_work) are pure functions of the
//     program and seed, byte-identical on any machine — the CI drift
//     guard diffs them;
//   - wall_* fields (wall_mono_ms, wall_incr_ms, wall_speedup) are
//     measured on the machine that produced the artifact and are
//     stripped before the drift diff. They are recorded so the
//     committed artifact documents the observed speedup (the guard
//     test asserts >= 5x at N >= 8).
//
// work-ops are resource-bearing gate counts fed to the backend: the
// monolithic path compiles the whole flattened program every edit,
// the incremental path recompiles only the edited module.

// modularSizes are the pipeline widths the study sweeps.
var modularSizes = []int{2, 4, 8, 16}

// modularWallReps is the best-of count for the wall-clock probes.
const modularWallReps = 5

// modularCells computes the study's cells. With measureWall false the
// wall_* metrics are omitted entirely — the guard test regenerates the
// deterministic fields this way and compares them against the
// committed artifact.
func modularCells(ctx context.Context, seed int64, workers int, measureWall bool) ([]surfcomm.SweepCellResult, error) {
	var cells []surfcomm.SweepCellResult
	for _, n := range modularSizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := surfcomm.PipelineProgram(n)
		if err != nil {
			return nil, err
		}
		flat, err := p.Flatten(surfcomm.InlineAll)
		if err != nil {
			return nil, err
		}

		mono, err := surfcomm.NewToolchain(surfcomm.WithSeed(seed), surfcomm.WithWorkers(workers))
		if err != nil {
			return nil, err
		}
		inc, err := surfcomm.NewToolchain(surfcomm.WithModular(), surfcomm.WithSeed(seed), surfcomm.WithWorkers(workers))
		if err != nil {
			return nil, err
		}

		// Cold incremental compile: fills the module cache.
		cold, err := inc.CompileIncremental(ctx, surfcomm.BraidBackend{}, p)
		if err != nil {
			return nil, err
		}
		// The edit-recompile under measurement: one leaf module dirty.
		leaf := modularLeaf(n)
		edited, err := surfcomm.MutateModule(p, leaf, 1)
		if err != nil {
			return nil, err
		}
		warm, err := inc.CompileIncremental(ctx, surfcomm.BraidBackend{}, edited)
		if err != nil {
			return nil, err
		}

		workMono := float64(flat.Ops())
		workIncr := 0.0
		for _, name := range warm.Modular.Compiled {
			workIncr += float64(moduleOps(edited.Modules[name]))
		}
		if workIncr == 0 {
			workIncr = 1 // a fully cached recompile still pays the stitch
		}

		metrics := map[string]float64{
			"modules":          float64(len(warm.Modular.Modules)),
			"compiled_cold":    float64(len(cold.Modular.Compiled)),
			"compiled_incr":    float64(len(warm.Modular.Compiled)),
			"module_hits_incr": float64(warm.Modular.Hits),
			"work_mono":        workMono,
			"work_incr":        workIncr,
			"speedup_work":     workMono / workIncr,
			"stitch_phases":    float64(warm.Modular.StitchPhases),
			"cross_braids":     float64(warm.Modular.CrossBraids),
			"cycles":           float64(warm.Cycles),
		}

		if measureWall {
			wallMono, err := bestOf(modularWallReps, func(int) error {
				_, err := mono.Compile(ctx, surfcomm.BraidBackend{}, flat)
				return err
			})
			if err != nil {
				return nil, err
			}
			// Each rep compiles a distinct pre-built variant so every probe
			// recompiles exactly one module against a warm cache, like a
			// real edit-recompile loop (repeating one variant would hit
			// the cache fully and time nothing). The edits themselves
			// happen outside the timer — editing is not compilation.
			variants := make([]*surfcomm.Program, modularWallReps)
			for rep := range variants {
				if variants[rep], err = surfcomm.MutateModule(p, leaf, 2+rep); err != nil {
					return nil, err
				}
			}
			wallIncr, err := bestOf(modularWallReps, func(rep int) error {
				_, err := inc.CompileIncremental(ctx, surfcomm.BraidBackend{}, variants[rep])
				return err
			})
			if err != nil {
				return nil, err
			}
			metrics["wall_mono_ms"] = wallMono
			metrics["wall_incr_ms"] = wallIncr
			if wallIncr > 0 {
				metrics["wall_speedup"] = wallMono / wallIncr
			}
		}

		cells = append(cells, surfcomm.SweepCellResult{
			Study:   "modular",
			Cell:    fmt.Sprintf("pipeline/N=%d", n),
			Seed:    seed,
			Metrics: metrics,
			Device:  "perfect",
		})
	}
	return cells, nil
}

// modularLeaf names the stage module the study edits: the middle leaf
// (matches internal/apps stage naming for N <= 26).
func modularLeaf(n int) string { return "stage" + string(rune('a'+(n/2)%n)) }

// moduleOps counts a module's resource-bearing local gates — the work
// its recompile sends through the backend.
func moduleOps(m *surfcomm.Module) int {
	ops := 0
	for _, in := range m.Insts {
		if in.Callee == "" && in.Op != surfcomm.OpBarrier {
			ops++
		}
	}
	return ops
}

// bestOf runs fn reps times and returns the fastest wall time in
// milliseconds (best-of filters scheduler noise without averaging in
// cold-start outliers).
func bestOf(reps int, fn func(rep int) error) (float64, error) {
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		if err := fn(rep); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if rep == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// runModular prints the incremental-compilation study and appends its
// cells (the BENCH_modular.json payload).
func runModular(ctx context.Context, seed int64, workers int, records *[]surfcomm.SweepCellResult) error {
	cells, err := modularCells(ctx, seed, workers, true)
	if err != nil {
		return err
	}
	*records = append(*records, cells...)
	fmt.Println("\nHierarchical incremental compilation: monolithic vs per-module caching")
	fmt.Println(strings.Repeat("-", 78))
	fmt.Printf("%-6s %8s %10s %10s %10s %10s %12s\n",
		"N", "modules", "work mono", "work incr", "speedup", "phases", "wall speedup")
	for _, c := range cells {
		m := c.Metrics
		fmt.Printf("%-6s %8.0f %10.0f %10.0f %9.1fx %10.0f %11.1fx\n",
			strings.TrimPrefix(c.Cell, "pipeline/N="), m["modules"],
			m["work_mono"], m["work_incr"], m["speedup_work"],
			m["stitch_phases"], m["wall_speedup"])
	}
	fmt.Println("Editing one leaf recompiles one module; everything else links from cache.")
	return nil
}
