// Command sweep runs the design-space exploration of paper §7 and §8.1:
//
//	-fig7   absolute space and time vs computation size (SQ, p_P=1e-8)
//	-fig8   double-defect:planar resource ratios and crossover (SQ, IM)
//	-fig9   crossover boundary across physical error rates (all apps)
//	-epr    pipelined EPR distribution window sweep (§8.1)
//
// With no flags, all four studies run.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"surfcomm/internal/apps"
	"surfcomm/internal/simd"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	fig7 := flag.Bool("fig7", false, "Figure 7: absolute scaling")
	fig8 := flag.Bool("fig8", false, "Figure 8: resource ratios and crossover")
	fig9 := flag.Bool("fig9", false, "Figure 9: crossover boundaries")
	epr := flag.Bool("epr", false, "§8.1: EPR window sweep")
	pp := flag.Float64("pp", 1e-8, "physical error rate for -fig7/-fig8")
	seed := flag.Int64("seed", 1, "characterization seed")
	flag.Parse()
	all := !*fig7 && !*fig8 && !*fig9 && !*epr

	var models []toolflow.AppModel
	needModels := all || *fig7 || *fig8 || *fig9
	if needModels {
		var err error
		models, err = toolflow.ReferenceModels(*seed)
		if err != nil {
			log.Fatal(err)
		}
	}

	if all || *fig7 {
		if err := runFig7(models, *pp); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig8 {
		if err := runFig8(models, *pp); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig9 {
		runFig9(models)
		fmt.Println()
	}
	if all || *epr {
		if err := runEPR(*seed); err != nil {
			log.Fatal(err)
		}
	}
}

func runFig7(models []toolflow.AppModel, pp float64) error {
	m, err := toolflow.ModelFor(models, "SQ")
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7: absolute resource usage, SQ application (p_P=%.0e)\n", pp)
	fmt.Println(strings.Repeat("-", 86))
	fmt.Printf("%-10s %4s %14s %14s %14s %14s\n",
		"K (1/p_L)", "d", "planar sec", "dd sec", "planar qubits", "dd qubits")
	pts, err := toolflow.Curve(m, pp, 0, 24, 1)
	if err != nil {
		return err
	}
	for i, dp := range pts {
		if i%2 != 0 {
			continue
		}
		fmt.Printf("%-10.1e %4d %14.3e %14.3e %14.3e %14.3e\n",
			dp.TotalOps, dp.Distance, dp.PlanarSeconds, dp.DDSeconds, dp.PlanarQubits, dp.DDQubits)
	}
	fmt.Println("Paper: small instances run in under a second; ~1000 physical qubits for modest sizes.")
	return nil
}

func runFig8(models []toolflow.AppModel, pp float64) error {
	for _, name := range []string{"SQ", "IM_Fully_Inlined"} {
		m, err := toolflow.ModelFor(models, name)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 8: double-defect relative to planar, %s (p_P=%.0e)\n", name, pp)
		fmt.Println(strings.Repeat("-", 64))
		fmt.Printf("%-10s %4s %10s %10s %12s\n", "K (1/p_L)", "d", "qubits", "time", "qubits*time")
		pts, err := toolflow.Curve(m, pp, 0, 24, 1)
		if err != nil {
			return err
		}
		for i, dp := range pts {
			if i%2 != 0 {
				continue
			}
			fmt.Printf("%-10.1e %4d %10.2f %10.3f %12.3f\n",
				dp.TotalOps, dp.Distance, dp.QubitsRatio, dp.TimeRatio, dp.SpaceTimeRatio)
		}
		if k, ok := toolflow.Crossover(m, pp); ok {
			fmt.Printf("crossover: double-defect favored beyond K ~= %.1e\n", k)
		} else {
			fmt.Println("crossover: planar favored across the full 1e0..1e24 range")
		}
		fmt.Println()
	}
	fmt.Println("Paper: planar better at small sizes; crossover occurs much later for the")
	fmt.Println("parallel IM than for the serial SQ (congestion hurts braids more).")
	return nil
}

func runFig9(models []toolflow.AppModel) {
	rates := toolflow.Figure9ErrorRates()
	fmt.Println("Figure 9: crossover boundary K*(p_P) per application")
	fmt.Println("(design points under the boundary favor planar codes)")
	fmt.Println(strings.Repeat("-", 30+12*len(rates)))
	fmt.Printf("%-18s", "p_P:")
	for _, r := range rates {
		fmt.Printf(" %10.0e", r)
	}
	fmt.Println()
	for _, m := range models {
		fmt.Printf("%-18s", m.Name)
		for _, pt := range toolflow.Boundary(m, rates) {
			if pt.OffChart {
				fmt.Printf(" %10s", ">1e24")
			} else {
				fmt.Printf(" %10.1e", pt.CrossoverOps)
			}
		}
		fmt.Println()
	}
	fmt.Println("Paper: boundaries fall as devices get faultier and sit higher for more")
	fmt.Println("parallel applications.")
}

func runEPR(seed int64) error {
	fmt.Println("§8.1: pipelined EPR distribution — look-ahead window sweep")
	cfg := teleport.Config{Distance: 9}
	for _, w := range apps.Fig6Suite() {
		regions := 4
		if w.Circuit.NumQubits > 128 {
			regions = 16
		}
		width := 32
		if perBank := (w.Circuit.NumQubits + regions - 1) / regions; perBank > width {
			width = perBank
		}
		sched, err := simd.Run(w.Circuit, simd.Config{Regions: regions, Width: width, Seed: seed})
		if err != nil {
			return err
		}
		jit := teleport.JITWindow(sched, cfg)
		windows := []int64{0, jit / 4, jit / 2, jit, 2 * jit, 8 * jit, teleport.PrefetchAll}
		results, err := teleport.SweepWindows(sched, windows, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%d moves, %d timesteps)\n", w.Name, len(sched.Moves), sched.Timesteps)
		fmt.Printf("%-14s %12s %12s %12s\n", "window", "peak live", "stall cyc", "overhead %")
		for _, r := range results {
			label := fmt.Sprintf("%d", r.WindowCycles)
			if r.WindowCycles == teleport.PrefetchAll {
				label = "prefetch-all"
			}
			fmt.Printf("%-14s %12d %12d %12.1f\n",
				label, r.PeakLiveEPR, r.StallCycles, 100*r.LatencyOverhead)
		}
		flood := results[len(results)-1]
		jitRes := results[3]
		if jitRes.PeakLiveEPR > 0 {
			fmt.Printf("JIT vs prefetch-all: %.1fx fewer live EPR qubits at %.1f%% latency overhead\n",
				float64(flood.PeakLiveEPR)/float64(jitRes.PeakLiveEPR), 100*jitRes.LatencyOverhead)
		}
	}
	fmt.Println("\nPaper: up to ~24x qubit savings at <= ~4% extra latency.")
	return nil
}
