// Command sweep runs the design-space exploration of paper §7 and §8.1:
//
//	-fig7   absolute space and time vs computation size (SQ, p_P=1e-8)
//	-fig8   double-defect:planar resource ratios and crossover (SQ, IM)
//	-fig9   crossover boundary across physical error rates (all apps)
//	-epr    pipelined EPR distribution window sweep (§8.1)
//
// With no flags, all four studies run. -fig6 selects the Figure 6
// braid-policy grid (every application under every policy) — like the
// other flags it narrows the run to the selected studies; it is not in
// the default set because cmd/braidsim covers it interactively.
//
// The grids evaluate on a worker pool (-workers, default GOMAXPROCS);
// results are gathered in deterministic cell order before printing, so
// the figures are byte-identical at any worker count — `-workers 1` is
// the serial reference. `-json FILE` additionally emits every grid cell
// as a machine-readable record (the BENCH_sweep.json convention) for
// tracking the reproduction's trajectory across revisions.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"surfcomm/internal/sweep"
	"surfcomm/internal/teleport"
	"surfcomm/internal/toolflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	fig6 := flag.Bool("fig6", false, "Figure 6: braid policy grid (opt-in; also see cmd/braidsim)")
	fig7 := flag.Bool("fig7", false, "Figure 7: absolute scaling")
	fig8 := flag.Bool("fig8", false, "Figure 8: resource ratios and crossover")
	fig9 := flag.Bool("fig9", false, "Figure 9: crossover boundaries")
	epr := flag.Bool("epr", false, "§8.1: EPR window sweep")
	pp := flag.Float64("pp", 1e-8, "physical error rate for -fig7/-fig8")
	seed := flag.Int64("seed", 1, "characterization seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := flag.String("json", "", "write per-cell results to this JSON file (e.g. BENCH_sweep.json)")
	flag.Parse()
	all := !*fig6 && !*fig7 && !*fig8 && !*fig9 && !*epr

	opt := sweep.Options{Workers: *workers, Seed: *seed}
	var records []sweep.CellResult

	var models []toolflow.AppModel
	if all || *fig7 || *fig8 || *fig9 {
		var err error
		models, err = sweep.Models(opt)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, sweep.ModelRecords(*seed, models)...)
	}

	if *fig6 {
		if err := runFig6(opt, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig7 {
		if err := runFig7(opt, models, *pp, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig8 {
		if err := runFig8(opt, models, *pp, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig9 {
		if err := runFig9(opt, models, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *epr {
		if err := runEPR(opt, &records); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := sweep.WriteRecordsFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d cells to %s", len(records), *jsonPath)
	}
}

func runFig6(opt sweep.Options, records *[]sweep.CellResult) error {
	cells, err := sweep.Figure6(opt, 9)
	if err != nil {
		return err
	}
	*records = append(*records, sweep.Figure6Records(opt.Seed, cells)...)
	fmt.Println("Figure 6: braid policy grid (schedule/critical-path ratio, utilization)")
	fmt.Println(strings.Repeat("-", 56))
	fmt.Printf("%-10s %-10s %10s %10s %12s\n", "App", "Policy", "ratio", "util %", "cycles")
	for _, c := range cells {
		fmt.Printf("%-10s Policy %-3d %10.3f %10.2f %12d\n",
			c.App, c.Policy, c.Ratio, 100*c.Util, c.Cycles)
	}
	return nil
}

func runFig7(opt sweep.Options, models []toolflow.AppModel, pp float64, records *[]sweep.CellResult) error {
	m, err := toolflow.ModelFor(models, "SQ")
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7: absolute resource usage, SQ application (p_P=%.0e)\n", pp)
	fmt.Println(strings.Repeat("-", 86))
	fmt.Printf("%-10s %4s %14s %14s %14s %14s\n",
		"K (1/p_L)", "d", "planar sec", "dd sec", "planar qubits", "dd qubits")
	pts, err := sweep.Curve(opt, m, pp, 0, 24, 1)
	if err != nil {
		return err
	}
	*records = append(*records, sweep.CurveRecords("figure7", m.Name, pp, opt.Seed, pts)...)
	for i, dp := range pts {
		if i%2 != 0 {
			continue
		}
		fmt.Printf("%-10.1e %4d %14.3e %14.3e %14.3e %14.3e\n",
			dp.TotalOps, dp.Distance, dp.PlanarSeconds, dp.DDSeconds, dp.PlanarQubits, dp.DDQubits)
	}
	fmt.Println("Paper: small instances run in under a second; ~1000 physical qubits for modest sizes.")
	return nil
}

func runFig8(opt sweep.Options, models []toolflow.AppModel, pp float64, records *[]sweep.CellResult) error {
	for _, name := range []string{"SQ", "IM_Fully_Inlined"} {
		m, err := toolflow.ModelFor(models, name)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 8: double-defect relative to planar, %s (p_P=%.0e)\n", name, pp)
		fmt.Println(strings.Repeat("-", 64))
		fmt.Printf("%-10s %4s %10s %10s %12s\n", "K (1/p_L)", "d", "qubits", "time", "qubits*time")
		pts, err := sweep.Curve(opt, m, pp, 0, 24, 1)
		if err != nil {
			return err
		}
		*records = append(*records, sweep.CurveRecords("figure8", name, pp, opt.Seed, pts)...)
		for i, dp := range pts {
			if i%2 != 0 {
				continue
			}
			fmt.Printf("%-10.1e %4d %10.2f %10.3f %12.3f\n",
				dp.TotalOps, dp.Distance, dp.QubitsRatio, dp.TimeRatio, dp.SpaceTimeRatio)
		}
		if k, ok := toolflow.Crossover(m, pp); ok {
			fmt.Printf("crossover: double-defect favored beyond K ~= %.1e\n", k)
		} else {
			fmt.Println("crossover: planar favored across the full 1e0..1e24 range")
		}
		fmt.Println()
	}
	fmt.Println("Paper: planar better at small sizes; crossover occurs much later for the")
	fmt.Println("parallel IM than for the serial SQ (congestion hurts braids more).")
	return nil
}

func runFig9(opt sweep.Options, models []toolflow.AppModel, records *[]sweep.CellResult) error {
	rates := toolflow.Figure9ErrorRates()
	boundaries, err := sweep.Boundary(opt, models, rates)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: crossover boundary K*(p_P) per application")
	fmt.Println("(design points under the boundary favor planar codes)")
	fmt.Println(strings.Repeat("-", 30+12*len(rates)))
	fmt.Printf("%-18s", "p_P:")
	for _, r := range rates {
		fmt.Printf(" %10.0e", r)
	}
	fmt.Println()
	*records = append(*records, sweep.BoundaryRecords(opt.Seed, models, boundaries)...)
	for mi, m := range models {
		fmt.Printf("%-18s", m.Name)
		for _, pt := range boundaries[mi] {
			if pt.OffChart {
				fmt.Printf(" %10s", ">1e24")
			} else {
				fmt.Printf(" %10.1e", pt.CrossoverOps)
			}
		}
		fmt.Println()
	}
	fmt.Println("Paper: boundaries fall as devices get faultier and sit higher for more")
	fmt.Println("parallel applications.")
	return nil
}

func runEPR(opt sweep.Options, records *[]sweep.CellResult) error {
	fmt.Println("§8.1: pipelined EPR distribution — look-ahead window sweep")
	cells, err := sweep.EPRWindows(opt, teleport.Config{Distance: 9})
	if err != nil {
		return err
	}
	*records = append(*records, sweep.EPRRecords(opt.Seed, cells)...)
	for _, c := range cells {
		fmt.Printf("\n%s (%d moves, %d timesteps)\n", c.Name, c.Moves, c.Timesteps)
		fmt.Printf("%-14s %12s %12s %12s\n", "window", "peak live", "stall cyc", "overhead %")
		for _, r := range c.Rows {
			fmt.Printf("%-14s %12d %12d %12.1f\n",
				sweep.EPRWindowLabel(r.WindowCycles), r.PeakLiveEPR, r.StallCycles, 100*r.LatencyOverhead)
		}
		flood := c.Rows[len(c.Rows)-1]
		jitRes := c.Rows[c.JITIndex]
		if jitRes.PeakLiveEPR > 0 {
			fmt.Printf("JIT vs prefetch-all: %.1fx fewer live EPR qubits at %.1f%% latency overhead\n",
				float64(flood.PeakLiveEPR)/float64(jitRes.PeakLiveEPR), 100*jitRes.LatencyOverhead)
		}
	}
	fmt.Println("\nPaper: up to ~24x qubit savings at <= ~4% extra latency.")
	return nil
}
