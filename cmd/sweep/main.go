// Command sweep runs the design-space exploration of paper §7 and §8.1:
//
//	-fig7   absolute space and time vs computation size (SQ, p_P=1e-8)
//	-fig8   double-defect:planar resource ratios and crossover (SQ, IM)
//	-fig9   crossover boundary across physical error rates (all apps)
//	-epr    pipelined EPR distribution window sweep (§8.1)
//
// With no flags, all four studies run. Two more grids are opt-in:
// -fig6 selects the Figure 6 braid-policy grid (every application under
// every policy; cmd/braidsim covers it interactively), and -decoder
// selects the §2.3 Monte Carlo error-model validation grid (distance ×
// physical rate, deterministic per-cell seeds). Like the other flags
// they narrow the run to the selected studies. `-epr -decoder -json
// BENCH_planar.json` regenerates the committed planar-pipeline
// artifact, and `-calib -json BENCH_calib.json` regenerates the
// calibration-study artifact (square vs heavy-hex coupling, uniform vs
// calibrated devices, live-defect survival).
//
// The studies run on a shared surfcomm.Toolchain: the grids evaluate on
// its worker pool (-workers, default GOMAXPROCS) and results are
// gathered in deterministic cell order before printing, so the figures
// are byte-identical at any worker count — `-workers 1` is the serial
// reference. `-json FILE` additionally emits every grid cell as a
// machine-readable record (the BENCH_sweep.json convention) for
// tracking the reproduction's trajectory across revisions. `-progress`
// streams per-cell completions to stderr, and an interrupt (Ctrl-C)
// cancels the run mid-grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"surfcomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	fig6 := flag.Bool("fig6", false, "Figure 6: braid policy grid (opt-in; also see cmd/braidsim)")
	fig7 := flag.Bool("fig7", false, "Figure 7: absolute scaling")
	fig8 := flag.Bool("fig8", false, "Figure 8: resource ratios and crossover")
	fig9 := flag.Bool("fig9", false, "Figure 9: crossover boundaries")
	epr := flag.Bool("epr", false, "§8.1: EPR window sweep")
	dec := flag.Bool("decoder", false, "§2.3: Monte Carlo error-model validation grid (opt-in)")
	decStrategy := flag.String("decoder-strategy", "", "decoding strategy for -decoder: mwpm or unionfind (default mwpm)")
	decode := flag.Bool("decode", false, "decoder strategy benchmark: parity + work-op crossover for mwpm vs unionfind (opt-in)")
	modular := flag.Bool("modular", false, "hierarchical incremental-compilation study: monolithic vs per-module caching (opt-in)")
	yield := flag.Bool("yield", false, "communication-yield study: braid compiles on defective devices (opt-in)")
	defectFrac := flag.String("defect-frac", "", "comma-separated defect fractions for -yield (default 0,0.02,0.05)")
	yieldApp := flag.String("yield-app", "GSE", "application for the -yield study")
	clustered := flag.Bool("clustered", false, "use clustered defects instead of random yield for -yield")
	calib := flag.Bool("calib", false, "calibration study: square vs heavy-hex, uniform vs calibrated, live-defect survival (opt-in)")
	calibApp := flag.String("calib-app", "GSE", "application for the -calib study")
	calibPath := flag.String("calibration", "", "calibration snapshot JSON for the -calib study (default: synthetic per-cell snapshots)")
	squareOnly := flag.Bool("square-only", false, "drop the heavy-hex rows from the -calib study")
	pp := flag.Float64("pp", 1e-8, "physical error rate for -fig7/-fig8")
	seed := flag.Int64("seed", 1, "characterization seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := flag.String("json", "", "write per-cell results to this JSON file (e.g. BENCH_sweep.json)")
	progress := flag.Bool("progress", false, "stream per-cell completions to stderr")
	flag.Parse()
	all := !*fig6 && !*fig7 && !*fig8 && !*fig9 && !*epr && !*dec && !*yield && !*decode && !*modular && !*calib

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []surfcomm.ToolchainOption{
		surfcomm.WithSeed(*seed),
		surfcomm.WithWorkers(*workers),
		surfcomm.WithTechnology(surfcomm.Superconducting(*pp)),
	}
	if *decStrategy != "" {
		opts = append(opts, surfcomm.WithDecoderStrategy(*decStrategy))
	}
	if *progress {
		opts = append(opts, surfcomm.WithProgress(func(ev surfcomm.Event) {
			log.Printf("%s %s (%d/%d)", ev.Stage, ev.Cell, ev.Index+1, ev.Total)
		}))
	}
	tc, err := surfcomm.NewToolchain(opts...)
	if err != nil {
		log.Fatal(err)
	}

	var records []surfcomm.SweepCellResult

	var models []surfcomm.AppModel
	if all || *fig7 || *fig8 || *fig9 {
		models, err = tc.Models(ctx)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, surfcomm.SweepModelRecords(*seed, models)...)
	}

	if *fig6 {
		if err := runFig6(ctx, tc, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig7 {
		if err := runFig7(ctx, tc, models, *pp, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig8 {
		if err := runFig8(ctx, tc, models, *pp, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *fig9 {
		if err := runFig9(ctx, tc, models, &records); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || *epr {
		if err := runEPR(ctx, tc, &records); err != nil {
			log.Fatal(err)
		}
	}
	if *dec {
		if err := runDecoder(ctx, tc, &records); err != nil {
			log.Fatal(err)
		}
	}
	if *decode {
		if err := runDecodeBench(ctx, *seed, *workers, &records); err != nil {
			log.Fatal(err)
		}
	}
	if *modular {
		if err := runModular(ctx, *seed, *workers, &records); err != nil {
			log.Fatal(err)
		}
	}
	if *yield {
		fracs, err := parseFracs(*defectFrac)
		if err != nil {
			log.Fatal(err)
		}
		if err := runYield(ctx, tc, surfcomm.SweepYieldOptions{
			App:       *yieldApp,
			Fractions: fracs,
			Clustered: *clustered,
			Distance:  9,
		}, &records); err != nil {
			log.Fatal(err)
		}
	}
	if *calib {
		copt := surfcomm.SweepCalibOptions{App: *calibApp, SquareOnly: *squareOnly}
		if *calibPath != "" {
			f, err := os.Open(*calibPath)
			if err != nil {
				log.Fatal(err)
			}
			copt.Calibration, err = surfcomm.LoadCalibration(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
		if err := runCalib(ctx, tc, copt, &records); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := surfcomm.WriteSweepRecordsFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d cells to %s", len(records), *jsonPath)
	}
}

// parseFracs parses the -defect-frac list; empty selects the YieldGrid
// defaults.
func parseFracs(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -defect-frac %q: %v", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func runYield(ctx context.Context, tc *surfcomm.Toolchain, yopt surfcomm.SweepYieldOptions, records *[]surfcomm.SweepCellResult) error {
	cells, err := tc.YieldGrid(ctx, yopt)
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepYieldRecords(cells)...)
	fmt.Println("\nCommunication yield: braid compiles on defective devices")
	fmt.Println(strings.Repeat("-", 78))
	fmt.Printf("%-8s %8s %6s %12s %8s %10s %12s\n",
		"App", "p", "trial", "cycles", "ratio", "adaptive", "p_L(sched)")
	for _, c := range cells {
		if c.Unroutable {
			fmt.Printf("%-8s %8g %6d %12s\n", c.App, c.DefectFrac, c.Trial, "unroutable")
			continue
		}
		fmt.Printf("%-8s %8g %6d %12d %8.3f %10d %12.3e\n",
			c.App, c.DefectFrac, c.Trial, c.Cycles, c.Ratio, c.Adaptive, c.LogicalRate)
	}
	fmt.Println("Defects stretch schedules (dimension-ordered routes detour via BFS) until")
	fmt.Println("the fabric disconnects and compiles fail fast with ErrUnroutable.")
	return nil
}

func runCalib(ctx context.Context, tc *surfcomm.Toolchain, copt surfcomm.SweepCalibOptions, records *[]surfcomm.SweepCellResult) error {
	cells, err := tc.CalibGrid(ctx, copt)
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepCalibRecords(cells)...)
	fmt.Println("\nCalibration study: coupling topology, calibrated heterogeneity, live defects")
	fmt.Println(strings.Repeat("-", 100))
	fmt.Printf("%-6s %-10s %-12s %5s %10s %7s %8s %8s %11s %11s %11s\n",
		"App", "topology", "cells", "trial", "cycles", "ratio", "adaptive", "reroutes", "p_tile min", "p_tile max", "p_L(sched)")
	for _, c := range cells {
		label := "uniform"
		if c.Calibrated {
			label = "calibrated"
		}
		if c.Defects > 0 {
			label = fmt.Sprintf("defects=%d", c.Defects)
		}
		if !c.Survived {
			fmt.Printf("%-6s %-10s %-12s %5d %10s\n", c.App, c.Topology, label, c.Trial, "unroutable")
			continue
		}
		fmt.Printf("%-6s %-10s %-12s %5d %10d %7.3f %8d %8d %11.3e %11.3e %11.3e\n",
			c.App, c.Topology, label, c.Trial, c.Cycles, c.Ratio, c.Adaptive, c.Reroutes, c.RateMin, c.RateMax, c.LogicalRate)
	}
	var defectCells, survived int
	for _, c := range cells {
		if c.Defects > 0 {
			defectCells++
			if c.Survived {
				survived++
			}
		}
	}
	if defectCells > 0 {
		fmt.Printf("live-defect survival: %d/%d runs re-routed around mid-schedule coupler deaths\n",
			survived, defectCells)
	}
	fmt.Println("Calibration realizes as heterogeneous link weights (slow couplers stretch braids)")
	fmt.Println("and per-tile error rates (placement avoids hot tiles; p_L prices the spread).")
	return nil
}

func runFig6(ctx context.Context, tc *surfcomm.Toolchain, records *[]surfcomm.SweepCellResult) error {
	cells, err := tc.Figure6(ctx, surfcomm.SweepFigure6Options{Distance: 9})
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepFigure6Records(tc.Seed(), cells)...)
	fmt.Println("Figure 6: braid policy grid (schedule/critical-path ratio, utilization)")
	fmt.Println(strings.Repeat("-", 56))
	fmt.Printf("%-10s %-10s %10s %10s %12s\n", "App", "Policy", "ratio", "util %", "cycles")
	for _, c := range cells {
		fmt.Printf("%-10s Policy %-3d %10.3f %10.2f %12d\n",
			c.App, c.Policy, c.Ratio, 100*c.Util, c.Cycles)
	}
	return nil
}

func runFig7(ctx context.Context, tc *surfcomm.Toolchain, models []surfcomm.AppModel, pp float64, records *[]surfcomm.SweepCellResult) error {
	m, err := surfcomm.ModelFor(models, "SQ")
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7: absolute resource usage, SQ application (p_P=%.0e)\n", pp)
	fmt.Println(strings.Repeat("-", 86))
	fmt.Printf("%-10s %4s %14s %14s %14s %14s\n",
		"K (1/p_L)", "d", "planar sec", "dd sec", "planar qubits", "dd qubits")
	pts, err := tc.Curve(ctx, m, 0, 24, 1)
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepCurveRecords("figure7", m.Name, pp, tc.Seed(), pts)...)
	for i, dp := range pts {
		if i%2 != 0 {
			continue
		}
		fmt.Printf("%-10.1e %4d %14.3e %14.3e %14.3e %14.3e\n",
			dp.TotalOps, dp.Distance, dp.PlanarSeconds, dp.DDSeconds, dp.PlanarQubits, dp.DDQubits)
	}
	fmt.Println("Paper: small instances run in under a second; ~1000 physical qubits for modest sizes.")
	return nil
}

func runFig8(ctx context.Context, tc *surfcomm.Toolchain, models []surfcomm.AppModel, pp float64, records *[]surfcomm.SweepCellResult) error {
	for _, name := range []string{"SQ", "IM_Fully_Inlined"} {
		m, err := surfcomm.ModelFor(models, name)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 8: double-defect relative to planar, %s (p_P=%.0e)\n", name, pp)
		fmt.Println(strings.Repeat("-", 64))
		fmt.Printf("%-10s %4s %10s %10s %12s\n", "K (1/p_L)", "d", "qubits", "time", "qubits*time")
		pts, err := tc.Curve(ctx, m, 0, 24, 1)
		if err != nil {
			return err
		}
		*records = append(*records, surfcomm.SweepCurveRecords("figure8", name, pp, tc.Seed(), pts)...)
		for i, dp := range pts {
			if i%2 != 0 {
				continue
			}
			fmt.Printf("%-10.1e %4d %10.2f %10.3f %12.3f\n",
				dp.TotalOps, dp.Distance, dp.QubitsRatio, dp.TimeRatio, dp.SpaceTimeRatio)
		}
		if k, ok := tc.Crossover(m); ok {
			fmt.Printf("crossover: double-defect favored beyond K ~= %.1e\n", k)
		} else {
			fmt.Println("crossover: planar favored across the full 1e0..1e24 range")
		}
		fmt.Println()
	}
	fmt.Println("Paper: planar better at small sizes; crossover occurs much later for the")
	fmt.Println("parallel IM than for the serial SQ (congestion hurts braids more).")
	return nil
}

func runFig9(ctx context.Context, tc *surfcomm.Toolchain, models []surfcomm.AppModel, records *[]surfcomm.SweepCellResult) error {
	rates := surfcomm.Figure9ErrorRates()
	boundaries, err := tc.Boundary(ctx, models, rates)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: crossover boundary K*(p_P) per application")
	fmt.Println("(design points under the boundary favor planar codes)")
	fmt.Println(strings.Repeat("-", 30+12*len(rates)))
	fmt.Printf("%-18s", "p_P:")
	for _, r := range rates {
		fmt.Printf(" %10.0e", r)
	}
	fmt.Println()
	*records = append(*records, surfcomm.SweepBoundaryRecords(tc.Seed(), models, boundaries)...)
	for mi, m := range models {
		fmt.Printf("%-18s", m.Name)
		for _, pt := range boundaries[mi] {
			if pt.OffChart {
				fmt.Printf(" %10s", ">1e24")
			} else {
				fmt.Printf(" %10.1e", pt.CrossoverOps)
			}
		}
		fmt.Println()
	}
	fmt.Println("Paper: boundaries fall as devices get faultier and sit higher for more")
	fmt.Println("parallel applications.")
	return nil
}

func runDecoder(ctx context.Context, tc *surfcomm.Toolchain, records *[]surfcomm.SweepCellResult) error {
	distances := []int{3, 5, 7}
	rates := []float64{0.02, 0.05, 0.10}
	const trials = 400
	cells, err := tc.DecoderGrid(ctx, distances, rates, trials)
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepDecoderRecords(cells)...)
	strategy := surfcomm.DecoderStrategyMWPM
	if len(cells) > 0 && cells[0].Strategy != "" {
		strategy = cells[0].Strategy
	}
	fmt.Printf("\n§2.3: Monte Carlo error-model validation (logical rate per decode round, %s)\n", strategy)
	fmt.Println(strings.Repeat("-", 56))
	fmt.Printf("%-6s %10s %10s %12s %10s\n", "d", "p", "failures", "trials", "p_L")
	for _, c := range cells {
		fmt.Printf("%-6d %10.2f %10d %12d %10.4f\n",
			c.Distance, c.PhysicalRate, c.Failures, c.Trials, c.LogicalRate)
	}
	fmt.Println("Paper: below threshold, each distance step suppresses the logical rate.")
	return nil
}

// runDecodeBench runs the decoder-strategy comparison behind
// BENCH_decode.json: parity cells at small distances (same per-cell
// seeds for both strategies, so the failure counts are directly
// comparable) plus a work-op curve at p=0.08 out to d=17, from which
// the union-find crossover distance is derived. Work-ops — not wall
// clock — are recorded so the artifact is byte-identical on any
// machine.
func runDecodeBench(ctx context.Context, seed int64, workers int, records *[]surfcomm.SweepCellResult) error {
	parityDistances := []int{3, 5, 7}
	parityRates := []float64{0.03, 0.05, 0.08}
	const parityTrials = 400
	crossDistances := []int{9, 13, 17}
	crossRates := []float64{0.08}
	const crossTrials = 60

	// ops[strategy][cell label] = workops/trial at p=0.08, keyed by d.
	ops := map[string]map[int]float64{}
	strategies := []string{surfcomm.DecoderStrategyMWPM, surfcomm.DecoderStrategyUnionFind}
	fmt.Println("\nDecoder strategy benchmark: mwpm vs unionfind")
	fmt.Println(strings.Repeat("-", 72))
	fmt.Printf("%-10s %-6s %10s %10s %12s %14s\n", "strategy", "d", "p", "failures", "trials", "workops/trial")
	for _, name := range strategies {
		tc, err := surfcomm.NewToolchain(
			surfcomm.WithSeed(seed),
			surfcomm.WithWorkers(workers),
			surfcomm.WithDecoderStrategy(name),
		)
		if err != nil {
			return err
		}
		cells, err := tc.DecoderGrid(ctx, parityDistances, parityRates, parityTrials)
		if err != nil {
			return err
		}
		cross, err := tc.DecoderGrid(ctx, crossDistances, crossRates, crossTrials)
		if err != nil {
			return err
		}
		cells = append(cells, cross...)
		*records = append(*records, surfcomm.SweepDecodeBenchRecords("decode", cells)...)
		ops[name] = map[int]float64{}
		for _, c := range cells {
			perTrial := float64(c.WorkOps) / float64(c.Trials)
			if c.PhysicalRate == 0.08 {
				ops[name][c.Distance] = perTrial
			}
			fmt.Printf("%-10s %-6d %10.2f %10d %12d %14.1f\n",
				name, c.Distance, c.PhysicalRate, c.Failures, c.Trials, perTrial)
		}
	}

	// Crossover: the smallest distance from which union-find stays
	// cheaper than the matcher for every larger measured distance.
	curve := append(append([]int{}, parityDistances...), crossDistances...)
	crossover := -1
	for i := len(curve) - 1; i >= 0; i-- {
		d := curve[i]
		if ops[surfcomm.DecoderStrategyUnionFind][d] < ops[surfcomm.DecoderStrategyMWPM][d] {
			crossover = d
		} else {
			break
		}
	}
	*records = append(*records, surfcomm.SweepCellResult{
		Study:    "decode",
		Cell:     "crossover/p=8.00e-02",
		Seed:     seed,
		Metrics:  map[string]float64{"crossover_distance": float64(crossover)},
		Device:   "perfect",
		Strategy: surfcomm.DecoderStrategyUnionFind,
	})
	if crossover >= 0 {
		fmt.Printf("crossover: unionfind cheaper than mwpm from d=%d on (p=0.08, work-ops/trial)\n", crossover)
	} else {
		fmt.Println("crossover: mwpm cheaper across the measured range (p=0.08)")
	}
	return nil
}

func runEPR(ctx context.Context, tc *surfcomm.Toolchain, records *[]surfcomm.SweepCellResult) error {
	fmt.Println("§8.1: pipelined EPR distribution — look-ahead window sweep")
	cells, err := tc.EPRStudy(ctx)
	if err != nil {
		return err
	}
	*records = append(*records, surfcomm.SweepEPRRecords(tc.Seed(), cells)...)
	for _, c := range cells {
		fmt.Printf("\n%s (%d moves, %d timesteps)\n", c.Name, c.Moves, c.Timesteps)
		fmt.Printf("%-14s %12s %12s %12s\n", "window", "peak live", "stall cyc", "overhead %")
		for _, r := range c.Rows {
			fmt.Printf("%-14s %12d %12d %12.1f\n",
				surfcomm.SweepEPRWindowLabel(r.WindowCycles), r.PeakLiveEPR, r.StallCycles, 100*r.LatencyOverhead)
		}
		flood := c.Rows[len(c.Rows)-1]
		jitRes := c.Rows[c.JITIndex]
		if jitRes.PeakLiveEPR > 0 {
			fmt.Printf("JIT vs prefetch-all: %.1fx fewer live EPR qubits at %.1f%% latency overhead\n",
				float64(flood.PeakLiveEPR)/float64(jitRes.PeakLiveEPR), 100*jitRes.LatencyOverhead)
		}
	}
	fmt.Println("\nPaper: up to ~24x qubit savings at <= ~4% extra latency.")
	return nil
}
