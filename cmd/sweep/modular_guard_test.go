package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"surfcomm"
)

// TestBenchModularDriftAndSpeedup drift-guards the committed
// BENCH_modular.json on two axes:
//
//   - the deterministic metrics (module counts, cache hits, work-op
//     totals, stitch diagnostics) must exactly match an in-process
//     regeneration at the committed seed — any difference means the
//     incremental pipeline's science moved without the artifact being
//     regenerated;
//   - the recorded wall_* metrics belong to the machine that produced
//     the artifact and are not regenerated here, but the committed
//     wall_speedup must uphold the acceptance contract: >= 5x over
//     monolithic at every N >= 8.
func TestBenchModularDriftAndSpeedup(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_modular.json")
	if err != nil {
		t.Fatalf("committed artifact missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var committed []surfcomm.SweepCellResult
	if err := dec.Decode(&committed); err != nil {
		t.Fatalf("BENCH_modular.json no longer matches the sweep record schema: %v", err)
	}
	if len(committed) != len(modularSizes) {
		t.Fatalf("artifact has %d cells, study sweeps %d sizes", len(committed), len(modularSizes))
	}

	seed := committed[0].Seed
	regen, err := modularCells(context.Background(), seed, 0, false)
	if err != nil {
		t.Fatalf("regenerating study: %v", err)
	}

	for i, want := range committed {
		got := regen[i]
		if got.Study != want.Study || got.Cell != want.Cell || got.Seed != want.Seed || got.Device != want.Device {
			t.Errorf("cell %d identity drifted: committed %s/%s, regenerated %s/%s",
				i, want.Study, want.Cell, got.Study, got.Cell)
			continue
		}
		// Deterministic fields must match exactly; wall_* fields exist
		// only in the committed artifact.
		for key, cv := range want.Metrics {
			if strings.HasPrefix(key, "wall_") {
				continue
			}
			gv, ok := got.Metrics[key]
			if !ok {
				t.Errorf("%s: committed metric %q not regenerated", want.Cell, key)
				continue
			}
			if math.Abs(gv-cv) > 1e-9 {
				t.Errorf("%s: metric %q drifted: committed %g, regenerated %g", want.Cell, key, cv, gv)
			}
		}
		for key := range got.Metrics {
			if _, ok := want.Metrics[key]; !ok {
				t.Errorf("%s: regenerated metric %q missing from the committed artifact", want.Cell, key)
			}
		}

		// Acceptance contract: the committed run must document >= 5x
		// wall-clock speedup (and >= 5x work-op speedup) at N >= 8.
		n := want.Metrics["modules"] - 1
		if n >= 8 {
			if ws := want.Metrics["wall_speedup"]; ws < 5 {
				t.Errorf("%s: committed wall_speedup %.2f < 5 at N=%.0f", want.Cell, ws, n)
			}
			if sw := want.Metrics["speedup_work"]; sw < 5 {
				t.Errorf("%s: speedup_work %.2f < 5 at N=%.0f", want.Cell, sw, n)
			}
		}
		// A one-leaf edit must have recompiled exactly one module.
		if ci := want.Metrics["compiled_incr"]; ci != 1 {
			t.Errorf("%s: leaf edit recompiled %.0f modules, want 1", want.Cell, ci)
		}
	}
}
