// Command surfrouter is the fleet front door: a consistent-hash
// reverse proxy that shards compile traffic across a pool of surfcommd
// replicas by plan digest, so each replica's LRU cache and disk store
// stay hot for the slice of the keyspace it owns.
//
//	surfrouter -addr :8700 \
//	    -replica a=http://10.0.0.1:8723 \
//	    -replica b=http://10.0.0.2:8723 \
//	    -replica c=http://10.0.0.3:8723
//
// Robustness features (see internal/cluster):
//
//   - Per-replica circuit breakers (Closed→Open→Half-Open) fed by both
//     live proxy outcomes and an active /readyz prober.
//   - Bounded failover along each key's rendezvous order on 5xx or
//     connection failure; 429s relay verbatim (never shop for a fresh
//     rate bucket); all-owners-open degrades to an honest 503 with
//     Retry-After.
//   - Optional hedging: with -hedge-percentile, a request that outlives
//     that percentile of recent latencies is raced against the next
//     replica on the ring.
//   - NDJSON streams (/compile with Accept: application/x-ndjson, and
//     the full-duplex /decode) pass through unbuffered, flushed per
//     chunk.
//
// The router overwrites X-Forwarded-For with the true client address;
// replicas started with -trust-forwarded use it as the rate-limit
// identity, giving one token bucket per client across the whole fleet.
//
// GET /healthz is the router's own cluster view (breaker states,
// failover/hedge/refusal counters, relay latency percentiles);
// GET /readyz answers 200 while at least one replica is routable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"surfcomm/internal/cluster"
	"surfcomm/internal/debugserve"
)

// replicaFlags collects repeated -replica name=url (or bare url)
// arguments.
type replicaFlags []cluster.ReplicaConfig

func (rf *replicaFlags) String() string {
	parts := make([]string, len(*rf))
	for i, rc := range *rf {
		parts[i] = rc.Name + "=" + rc.URL
	}
	return strings.Join(parts, ",")
}

func (rf *replicaFlags) Set(v string) error {
	name, u, ok := strings.Cut(v, "=")
	if !ok {
		name, u = v, v
	}
	if name == "" || u == "" {
		return fmt.Errorf("replica %q: want name=url", v)
	}
	*rf = append(*rf, cluster.ReplicaConfig{Name: name, URL: u})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfrouter: ")
	addr := flag.String("addr", ":8700", "listen address")
	var replicas replicaFlags
	flag.Var(&replicas, "replica", "replica as name=url (repeatable); bare url uses the url as the ring name")
	maxAttempts := flag.Int("max-attempts", 0, "failover bound per request (0 = min(3, replicas))")
	failThreshold := flag.Int("fail-threshold", cluster.DefaultFailThreshold, "consecutive failures before a breaker opens")
	cooldown := flag.Duration("cooldown", cluster.DefaultCooldown, "open-breaker cooldown before a half-open trial")
	probeInterval := flag.Duration("probe-interval", time.Second, "active /readyz probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	hedgePercentile := flag.Float64("hedge-percentile", 0, "hedge requests outliving this latency percentile, e.g. 0.95 (0 = off)")
	hedgeMinSamples := flag.Int("hedge-min-samples", 0, "latency samples required before hedging arms (0 = 32)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address via a dedicated mux (empty = off; keep it private)")
	flag.Parse()

	if len(replicas) == 0 {
		log.Fatal("at least one -replica is required")
	}
	if *pprofAddr != "" {
		stopPprof, err := debugserve.Start(*pprofAddr, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:        replicas,
		MaxAttempts:     *maxAttempts,
		FailThreshold:   *failThreshold,
		Cooldown:        *cooldown,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		HedgePercentile: *hedgePercentile,
		HedgeMinSamples: *hedgeMinSamples,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()

	srv := &http.Server{
		Addr:    *addr,
		Handler: rt,
		// Same slow-client posture as surfcommd: no write timeout
		// (streams and long compiles are legitimate), bounded header
		// reads. No ReadTimeout: /decode keeps its request body open
		// for the life of the stream.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d replicas on %s (failover %d, breaker %d/%s, probe %s)",
			len(replicas), *addr, *maxAttempts, *failThreshold, *cooldown, *probeInterval)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	log.Printf("shutting down (drain bound %s)…", *shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	rt.Close()
}
