package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

// TestBenchServeStructure drift-guards the committed BENCH_serve.json:
// the file must strictly match the Report schema (unknown or renamed
// fields fail the decode) and satisfy the run's internal invariants.
// Latency and throughput *values* are deliberately not asserted — they
// belong to the machine that produced the artifact; only the structure
// is contract.
func TestBenchServeStructure(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("committed artifact missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_serve.json no longer matches the surfload Report schema: %v", err)
	}

	if rep.Schema != "surfload/1" {
		t.Errorf("schema = %q, want surfload/1", rep.Schema)
	}
	if rep.Workload.Requests <= 0 || rep.Workload.Concurrency <= 0 || rep.Workload.Circuits <= 0 {
		t.Errorf("workload spec not positive: %+v", rep.Workload)
	}
	if rep.Workload.ZipfS <= 1 {
		t.Errorf("zipf_s = %g, must exceed 1", rep.Workload.ZipfS)
	}

	// Every scheduled request is accounted for, one way or another.
	answered := 0
	for code, n := range rep.StatusCounts {
		c, err := strconv.Atoi(code)
		if err != nil || c < 100 || c > 599 {
			t.Errorf("status_counts key %q is not an HTTP status", code)
		}
		if n <= 0 {
			t.Errorf("status_counts[%s] = %d", code, n)
		}
		answered += n
	}
	if total := answered + rep.TransportErrors; total != rep.Workload.Requests {
		t.Errorf("status counts (%d) + transport errors (%d) != requests (%d)",
			answered, rep.TransportErrors, rep.Workload.Requests)
	}

	// Percentiles are recorded, not asserted — but they must at least
	// be ordered and present.
	l := rep.LatencyMs
	if l.P50 <= 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		t.Errorf("latency percentiles malformed: %+v", l)
	}
	if rep.CachedFrac < 0 || rep.CachedFrac > 1 {
		t.Errorf("cached_frac = %g out of [0,1]", rep.CachedFrac)
	}

	// The committed artifact is a router run: per-replica balance and
	// router counters must be present, and the balance must cover the
	// answered requests.
	if len(rep.ReplicaBalance) < 2 {
		t.Errorf("replica_balance = %v, want a multi-replica run", rep.ReplicaBalance)
	}
	balanced := 0
	for name, n := range rep.ReplicaBalance {
		if n <= 0 {
			t.Errorf("replica_balance[%s] = %d", name, n)
		}
		balanced += n
	}
	if balanced != answered {
		t.Errorf("replica_balance sums to %d, %d requests were answered", balanced, answered)
	}
	if rep.Router == nil {
		t.Error("router counter delta missing from a router-targeted run")
	} else if rep.Router.Forwarded == 0 {
		t.Error("router forwarded counter is zero")
	}
}
