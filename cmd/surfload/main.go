// Command surfload is a deterministic load generator for surfcommd and
// surfrouter: it replays a seeded, Zipf-skewed mix of compile and
// estimate requests against a target and reports latency percentiles,
// an error breakdown, the client-observed cache-hit fraction, and —
// behind a router — the per-replica balance of the keyspace.
//
//	surfload -target http://127.0.0.1:8700 -requests 400 -concurrency 8 -seed 1 -o BENCH_serve.json
//
// Determinism: the request *schedule* (which circuit, which backend,
// which endpoint, in what order) is a pure function of -seed and the
// workload flags, so two runs against equivalent fleets exercise the
// same keyspace in the same order. Zipf popularity mirrors production
// compile traffic: a few hot circuits dominate, so a digest-sharded
// fleet shows high cache-hit fractions while the tail still spreads
// load across replicas.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"surfcomm"
	"surfcomm/internal/cluster"
	"surfcomm/internal/service"
)

// workItem is one scheduled request: a pre-marshaled body for a fixed
// endpoint.
type workItem struct {
	path string // "/compile" or "/estimate"
	body []byte
}

// outcome is one measured request.
type outcome struct {
	status  int // 0 = transport error
	latency time.Duration
	cached  bool
	isHit   bool // 200 /compile with a parsed cached flag
	replica string
}

// corpus builds n distinct circuits (alternating GSE and Ising
// families, sizes growing with the index) and pre-marshals one compile
// request per circuit, alternating braid and planar backends.
func corpus(n int) ([][]byte, error) {
	bodies := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		var (
			circ *surfcomm.Circuit
			err  error
		)
		if i%2 == 0 {
			circ, err = surfcomm.NewGSE(surfcomm.GSEConfig{M: 4 + i, Steps: 2})
		} else {
			circ, err = surfcomm.NewIsing(surfcomm.IsingConfig{N: 4 + i, Steps: 2}, false)
		}
		if err != nil {
			return nil, fmt.Errorf("circuit %d: %w", i, err)
		}
		var buf bytes.Buffer
		if err := surfcomm.WriteQASM(&buf, circ); err != nil {
			return nil, fmt.Errorf("circuit %d: %w", i, err)
		}
		backend := "braid"
		if i%2 == 1 {
			backend = "planar"
		}
		body, err := json.Marshal(service.Request{QASM: buf.String(), Backend: backend})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// modularCorpus builds the hierarchical edit-recompile corpus: variant
// 0 is the N-stage pipeline program itself, and each later variant is
// a one-module mutation of a rotating stage — the request stream a
// team iterating on one kernel at a time would generate. Every variant
// has a distinct program digest (the plan cache misses the first time
// each appears) but shares all-but-one module with the base, so the
// replica's module cache should absorb most of the compile work. Like
// corpus, the result is a pure function of its arguments.
func modularCorpus(n, stages int) ([][]byte, error) {
	base, err := surfcomm.PipelineProgram(stages)
	if err != nil {
		return nil, err
	}
	// Stage modules in deterministic rotation order (skip the entry).
	var stageNames []string
	for name := range base.Modules {
		if name != base.Entry {
			stageNames = append(stageNames, name)
		}
	}
	sort.Strings(stageNames)

	bodies := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p := base
		if i > 0 {
			p, err = surfcomm.MutateModule(base, stageNames[(i-1)%len(stageNames)], i)
			if err != nil {
				return nil, fmt.Errorf("variant %d: %w", i, err)
			}
		}
		var buf bytes.Buffer
		if err := surfcomm.WriteProgramQASM(&buf, p); err != nil {
			return nil, fmt.Errorf("variant %d: %w", i, err)
		}
		body, err := json.Marshal(service.Request{QASM: buf.String(), Backend: "braid"})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// schedule generates the deterministic request sequence: circuit
// indices drawn from a seeded Zipf over the corpus, endpoint drawn
// from the estimate fraction.
func schedule(bodies [][]byte, requests int, seed int64, zipfS, estimateFrac float64) []workItem {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(bodies)-1))
	items := make([]workItem, requests)
	for i := range items {
		idx := int(zipf.Uint64())
		path := "/compile"
		if rng.Float64() < estimateFrac {
			path = "/estimate"
		}
		items[i] = workItem{path: path, body: bodies[idx]}
	}
	return items
}

// scrapeHealth fetches the target's /healthz as loose JSON; both
// surfcommd and surfrouter shapes are handled by the caller.
func scrapeHealth(client *http.Client, target string) map[string]json.RawMessage {
	resp, err := client.Get(target + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m) != nil {
		return nil
	}
	return m
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfload: ")
	target := flag.String("target", "http://127.0.0.1:8700", "base URL of a surfrouter or surfcommd")
	requests := flag.Int("requests", 400, "total requests to send")
	concurrency := flag.Int("concurrency", 8, "in-flight request bound")
	rps := flag.Float64("rps", 0, "paced request rate (0 = closed loop: as fast as concurrency allows)")
	seed := flag.Int64("seed", 1, "workload schedule seed")
	circuits := flag.Int("circuits", 8, "distinct circuits in the corpus")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf skew of circuit popularity (>1; larger = hotter head)")
	estimateFrac := flag.Float64("estimate-frac", 0.15, "fraction of requests sent to /estimate instead of /compile")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("o", "", "write the JSON report here (default stdout)")
	modular := flag.Bool("modular", false,
		"hierarchical edit-recompile workload: rotating one-module mutations of an N-stage pipeline (reports the module-cache hit fraction)")
	stages := flag.Int("stages", 6, "pipeline stages in the -modular corpus")
	flag.Parse()
	if *requests <= 0 || *concurrency <= 0 || *circuits <= 0 {
		log.Fatal("-requests, -concurrency, and -circuits must be positive")
	}
	if *modular && *stages < 1 {
		log.Fatal("-stages must be positive")
	}

	var bodies [][]byte
	var err error
	if *modular {
		bodies, err = modularCorpus(*circuits, *stages)
	} else {
		bodies, err = corpus(*circuits)
	}
	if err != nil {
		log.Fatal(err)
	}
	items := schedule(bodies, *requests, *seed, *zipfS, *estimateFrac)

	if !*modular {
		*stages = 0 // only a -modular corpus has a stage width to record
	}

	client := &http.Client{Timeout: *timeout}
	before := scrapeHealth(client, *target)

	work := make(chan workItem)
	outcomes := make([]outcome, 0, len(items))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				o := doOne(client, *target, item)
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	if *rps > 0 {
		interval := time.Duration(float64(time.Second) / *rps)
		ticker := time.NewTicker(interval)
		for _, item := range items {
			<-ticker.C
			work <- item
		}
		ticker.Stop()
	} else {
		for _, item := range items {
			work <- item
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeHealth(client, *target)
	report := buildReport(*target, WorkloadSpec{
		Requests:     *requests,
		Concurrency:  *concurrency,
		TargetRPS:    *rps,
		Seed:         *seed,
		Circuits:     *circuits,
		ZipfS:        *zipfS,
		EstimateFrac: *estimateFrac,
		Modular:      *modular,
		Stages:       *stages,
	}, outcomes, elapsed, before, after)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d requests in %.2fs: p50 %.1fms p99 %.1fms, statuses %v, cached %.0f%%",
		*requests, elapsed.Seconds(), report.LatencyMs.P50, report.LatencyMs.P99,
		report.StatusCounts, report.CachedFrac*100)
	if report.ModuleHitFrac != nil {
		log.Printf("module cache: %d hits / %d disk / %d misses (%.0f%% of module lookups served from cache)",
			report.Cache.ModuleHits, report.Cache.ModuleDiskHits, report.Cache.ModuleMisses,
			*report.ModuleHitFrac*100)
	}
}

// doOne sends one scheduled request and measures it.
func doOne(client *http.Client, target string, item workItem) outcome {
	start := time.Now()
	resp, err := client.Post(target+item.path, "application/json", bytes.NewReader(item.body))
	o := outcome{latency: time.Since(start)}
	if err != nil {
		return o
	}
	defer resp.Body.Close()
	o.status = resp.StatusCode
	o.replica = resp.Header.Get(cluster.ReplicaHeader)
	if item.path == "/compile" && resp.StatusCode == http.StatusOK {
		var cr struct {
			Cached bool `json:"cached"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&cr) == nil {
			o.isHit = true
			o.cached = cr.Cached
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	}
	return o
}

func buildReport(target string, spec WorkloadSpec, outcomes []outcome, elapsed time.Duration,
	before, after map[string]json.RawMessage) Report {
	rep := Report{
		Schema:          "surfload/1",
		Target:          target,
		Workload:        spec,
		DurationSeconds: elapsed.Seconds(),
		StatusCounts:    map[string]int{},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(len(outcomes)) / elapsed.Seconds()
	}
	var lats []time.Duration
	balance := map[string]int{}
	compiles, cachedHits := 0, 0
	for _, o := range outcomes {
		lats = append(lats, o.latency)
		if o.status == 0 {
			rep.TransportErrors++
		} else {
			rep.StatusCounts[strconv.Itoa(o.status)]++
		}
		if o.replica != "" {
			balance[o.replica]++
		}
		if o.isHit {
			compiles++
			if o.cached {
				cachedHits++
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyMs = LatencyStats{
		P50: percentileMs(lats, 0.50),
		P90: percentileMs(lats, 0.90),
		P99: percentileMs(lats, 0.99),
	}
	if n := len(lats); n > 0 {
		rep.LatencyMs.Max = float64(lats[n-1]) / float64(time.Millisecond)
	}
	if compiles > 0 {
		rep.CachedFrac = float64(cachedHits) / float64(compiles)
	}
	if len(balance) > 0 {
		rep.ReplicaBalance = balance
	}

	// Target-side counter deltas, shape-sniffed from /healthz: a
	// surfcommd exposes "cache", a surfrouter exposes "forwarded".
	if before != nil && after != nil {
		if _, ok := after["cache"]; ok {
			var b, a CacheDelta
			if json.Unmarshal(before["cache"], &b) == nil && json.Unmarshal(after["cache"], &a) == nil {
				rep.Cache = &CacheDelta{
					Hits:           a.Hits - b.Hits,
					Misses:         a.Misses - b.Misses,
					Deduped:        a.Deduped - b.Deduped,
					DiskHits:       a.DiskHits - b.DiskHits,
					ModuleHits:     a.ModuleHits - b.ModuleHits,
					ModuleDiskHits: a.ModuleDiskHits - b.ModuleDiskHits,
					ModuleMisses:   a.ModuleMisses - b.ModuleMisses,
				}
				served := rep.Cache.ModuleHits + rep.Cache.ModuleDiskHits
				if lookups := served + rep.Cache.ModuleMisses; lookups > 0 {
					frac := float64(served) / float64(lookups)
					rep.ModuleHitFrac = &frac
				}
			}
		} else if _, ok := after["forwarded"]; ok {
			var b, a RouterDelta
			bb, _ := json.Marshal(before) //nolint:errcheck
			ab, _ := json.Marshal(after)  //nolint:errcheck
			if json.Unmarshal(bb, &b) == nil && json.Unmarshal(ab, &a) == nil {
				rep.Router = &RouterDelta{
					Forwarded: a.Forwarded - b.Forwarded,
					Failovers: a.Failovers - b.Failovers,
					Hedges:    a.Hedges - b.Hedges,
					Refused:   a.Refused - b.Refused,
				}
			}
		}
	}
	return rep
}
