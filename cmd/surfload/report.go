package main

// The surfload report schema. BENCH_serve.json at the repo root is one
// committed run of this tool; its *structure* is drift-guarded by
// bench_guard_test.go (strict unmarshal into these types), while the
// latency and throughput *values* are recorded, not asserted — they
// are whatever the machine that produced them measured.

// Report is the full surfload output.
type Report struct {
	Schema   string       `json:"schema"` // "surfload/1"
	Target   string       `json:"target"`
	Workload WorkloadSpec `json:"workload"`

	DurationSeconds float64 `json:"duration_seconds"`
	AchievedRPS     float64 `json:"achieved_rps"`

	LatencyMs LatencyStats `json:"latency_ms"`

	// StatusCounts maps HTTP status ("200", "429", "503", …) to count;
	// TransportErrors are requests that never produced a status.
	StatusCounts    map[string]int `json:"status_counts"`
	TransportErrors int            `json:"transport_errors"`

	// CachedFrac is the fraction of 200 compile replies served from a
	// cache (client-observed via the "cached" field).
	CachedFrac float64 `json:"cached_frac"`

	// ReplicaBalance counts responses per X-Surfcomm-Replica value —
	// empty when the target is a bare replica (no router in front).
	ReplicaBalance map[string]int `json:"replica_balance,omitempty"`

	// Cache is the target's own cache-counter delta over the run, when
	// the target is a single replica whose /healthz exposes one.
	Cache *CacheDelta `json:"cache,omitempty"`
	// ModuleHitFrac is the fraction of module-plan lookups served from
	// cache during the run (LRU or disk), present when the target's
	// module counters moved — the incremental pipeline's figure of
	// merit: a one-module edit to an N-module program should score
	// (N-1)/N even though every program digest missed.
	ModuleHitFrac *float64 `json:"module_hit_frac,omitempty"`
	// Router is the router-counter delta over the run, when the target
	// is a surfrouter.
	Router *RouterDelta `json:"router,omitempty"`
}

// WorkloadSpec records the deterministic inputs that produced the run.
type WorkloadSpec struct {
	Requests     int     `json:"requests"`
	Concurrency  int     `json:"concurrency"`
	TargetRPS    float64 `json:"target_rps"` // 0 = closed loop
	Seed         int64   `json:"seed"`
	Circuits     int     `json:"circuits"`
	ZipfS        float64 `json:"zipf_s"`
	EstimateFrac float64 `json:"estimate_frac"`
	// Modular marks the hierarchical edit-recompile workload; Stages is
	// the pipeline width its corpus was built from.
	Modular bool `json:"modular,omitempty"`
	Stages  int  `json:"stages,omitempty"`
}

// LatencyStats are request-latency percentiles in milliseconds.
type LatencyStats struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// CacheDelta is the served replica's cache movement during the run.
// The Module* counters move only under hierarchical (-modular) traffic:
// they count per-module plan lookups inside incremental compiles, one
// level below the whole-program cache the other counters watch.
type CacheDelta struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Deduped  uint64 `json:"deduped"`
	DiskHits uint64 `json:"disk_hits"`

	ModuleHits     uint64 `json:"module_hits,omitempty"`
	ModuleDiskHits uint64 `json:"module_disk_hits,omitempty"`
	ModuleMisses   uint64 `json:"module_misses,omitempty"`
}

// RouterDelta is the router's robustness-counter movement during the
// run.
type RouterDelta struct {
	Forwarded uint64 `json:"forwarded"`
	Failovers uint64 `json:"failovers"`
	Hedges    uint64 `json:"hedges"`
	Refused   uint64 `json:"refused"`
}
