// Command surfcommd is the long-running compile server: the surfcomm
// toolchain behind an HTTP/JSON API with a digest-keyed plan cache, so
// repeated compiles of the same (circuit, target) pair are served
// without recomputation and concurrent identical requests compile once.
//
//	surfcommd -addr :8723 -cache 256 -workers 0
//
// Endpoints (see internal/service):
//
//	POST /compile   compile one circuit            {"qasm": "...", "backend": "planar", ...}
//	POST /batch     compile a slice of requests    [{"qasm": "..."}, ...]
//	POST /estimate  frontend characterization      {"qasm": "..."}
//	GET  /models    reference application models
//	GET  /healthz   liveness + cache/pool counters
//
// A SIGINT/SIGTERM drains in-flight requests through the pipeline's
// ErrCanceled plumbing and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"surfcomm"
	"surfcomm/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfcommd: ")
	addr := flag.String("addr", ":8723", "listen address")
	cacheSize := flag.Int("cache", service.DefaultMaxEntries, "plan cache LRU bound (0 = default, negative = disable)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Int64("seed", 1, "default layout/partition seed")
	distance := flag.Int("distance", 9, "default code distance")
	pp := flag.Float64("pp", 1e-8, "default physical error rate")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	flag.Parse()

	tc, err := surfcomm.NewToolchain(
		surfcomm.WithSeed(*seed),
		surfcomm.WithDistance(*distance),
		surfcomm.WithTechnology(surfcomm.Superconducting(*pp)),
		surfcomm.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cache-shared compiles run under the process context: one client
	// disconnecting never cancels a compile other requests wait on,
	// while shutdown still aborts everything through ErrCanceled.
	svc := service.New(tc, service.Config{MaxEntries: *cacheSize, Workers: *workers, BaseContext: ctx})

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(svc),
		// Tie every request context to the process context, so a
		// shutdown cancels in-flight compiles through ErrCanceled.
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Slow-client bounds for a long-running daemon; bodies are
		// size-capped by the handler (service.MaxBodyBytes). No write
		// timeout: large-circuit compiles legitimately take a while
		// and are canceled through the request context instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache %d entries, workers %d)", *addr, *cacheSize, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (drain %s)…", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	st := svc.Stats()
	log.Printf("served %d hits / %d misses / %d deduped, %d cached plans at exit",
		st.Hits, st.Misses, st.Deduped, st.Entries)
}
