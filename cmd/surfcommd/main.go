// Command surfcommd is the long-running compile server: the surfcomm
// toolchain behind an HTTP/JSON API with a digest-keyed plan cache
// (optionally persisted to a crash-safe disk store), admission control
// with deadline-aware shedding, per-client rate limiting, and a
// fault-injection harness for chaos testing.
//
//	surfcommd -addr :8723 -cache 256 -workers 0 -store /var/lib/surfcomm/plans
//
// Endpoints (see internal/service):
//
//	POST /compile   compile one circuit            {"qasm": "...", "backend": "planar", ...}
//	POST /batch     compile a slice of requests    [{"qasm": "..."}, ...]
//	POST /estimate  frontend characterization      {"qasm": "..."}
//	POST /decode    streaming syndrome decoding    NDJSON full-duplex, see internal/service/decode.go
//	GET  /models    reference application models
//	GET  /healthz   liveness + cache/admission/store/fault counters
//	GET  /readyz    readiness (503 while draining or saturated)
//
// A SIGINT/SIGTERM flips /readyz, stops accepting connections, and
// drains in-flight requests for up to -shutdown-timeout; compiles
// still running at the deadline are force-canceled through the
// pipeline's ErrCanceled plumbing, so a wedged compile cannot hang the
// exit. Queued disk writes are flushed before the process ends.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"surfcomm"
	"surfcomm/internal/debugserve"
	"surfcomm/internal/faultinject"
	"surfcomm/internal/service"
	"surfcomm/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfcommd: ")
	addr := flag.String("addr", ":8723", "listen address")
	cacheSize := flag.Int("cache", service.DefaultMaxEntries, "plan cache LRU bound (0 = default, negative = disable)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Int64("seed", 1, "default layout/partition seed")
	distance := flag.Int("distance", 9, "default code distance")
	pp := flag.Float64("pp", 1e-8, "default physical error rate")
	storeDir := flag.String("store", "", "persistent plan store directory (empty = in-memory only)")
	queueDepth := flag.Int("queue", service.DefaultQueueDepth, "compile queue bound behind the worker slots (negative = no queueing)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst size (0 = 2x rate)")
	calibPath := flag.String("calibration", "", "calibration snapshot JSON realized onto every default-device compile (empty = uniform device)")
	chaos := flag.String("chaos", "", "fault injection spec, e.g. compile-error=0.1,torn-write=0.2,compile-latency=50ms,seed=7")
	trustForwarded := flag.Bool("trust-forwarded", false,
		"trust X-Forwarded-For for rate-limit client identity (only behind surfrouter or another overwriting proxy)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"graceful drain bound; compiles still running at the deadline are force-canceled")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address via a dedicated mux (empty = off; keep it private)")
	flag.Parse()

	if *pprofAddr != "" {
		stopPprof, err := debugserve.Start(*pprofAddr, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
	}

	opts := []surfcomm.ToolchainOption{
		surfcomm.WithSeed(*seed),
		surfcomm.WithDistance(*distance),
		surfcomm.WithTechnology(surfcomm.Superconducting(*pp)),
		surfcomm.WithWorkers(*workers),
	}
	if *calibPath != "" {
		f, err := os.Open(*calibPath)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := surfcomm.LoadCalibration(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("calibration %s: digest %.12s…, taken %s", cal.Name, cal.Digest(), cal.Taken.Format(time.RFC3339))
		opts = append(opts, surfcomm.WithCalibration(cal))
	}
	tc, err := surfcomm.NewToolchain(opts...)
	if err != nil {
		log.Fatal(err)
	}

	var inj *faultinject.Injector
	if *chaos != "" {
		if inj, err = faultinject.Parse(*chaos); err != nil {
			log.Fatal(err)
		}
		log.Printf("CHAOS MODE: %s", inj)
	}
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, inj); err != nil {
			log.Fatal(err)
		}
		ss := st.Stats()
		log.Printf("plan store %s: %d entries, %d quarantined at scan", *storeDir, ss.Entries, ss.Quarantined)
	}

	// Two contexts with different jobs: sigCtx ends when the operator
	// asks us to stop; compileCtx is the authority cache-shared compiles
	// run under and ends only when the drain deadline forces it. Binding
	// compiles to sigCtx would turn every SIGTERM into an instant
	// ErrCanceled for in-flight work — the opposite of draining.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	compileCtx, forceCancel := context.WithCancel(context.Background())
	defer forceCancel()

	svc := service.New(tc, service.Config{
		MaxEntries:  *cacheSize,
		Workers:     *workers,
		BaseContext: compileCtx,
		QueueDepth:  *queueDepth,
		RatePerSec:  *rate,
		Burst:       *burst,
		Store:       st,
		Injector:    inj,

		// Off by default: a replica reachable directly must not let
		// clients pick their own rate-limit identity. surfrouter
		// overwrites the header, so behind it the flag is safe.
		TrustForwardedFor: *trustForwarded,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(svc),
		// Requests run under the compile context (not the signal
		// context) so they survive into the drain window.
		BaseContext: func(net.Listener) context.Context { return compileCtx },
		// Slow-client bounds for a long-running daemon; bodies are
		// size-capped by the handler (service.MaxBodyBytes). No write
		// timeout: large-circuit compiles legitimately take a while
		// and are canceled through the request context instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache %d entries, workers %d, queue %d)",
			*addr, *cacheSize, *workers, *queueDepth)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	// Graceful shutdown: flip /readyz first so load balancers stop
	// routing here, then drain. Shutdown closes the listener and waits
	// for in-flight requests; if the timeout passes with compiles still
	// wedged, force-cancel them (ErrCanceled to their clients) and log
	// what was abandoned.
	log.Printf("shutting down (drain bound %s)…", *shutdownTimeout)
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		adm := svc.AdmissionStats()
		cs := svc.Stats()
		log.Printf("drain deadline passed: force-canceling %d running / %d queued compiles (%d flights)",
			adm.Running, adm.Queued, cs.Inflight)
		forceCancel()
		srv.Close()
	}
	// Flush the write-behind disk queue so the next start serves what
	// this one compiled.
	svc.Close()

	cst := svc.Stats()
	adm := svc.AdmissionStats()
	log.Printf("served %d hits / %d misses / %d deduped / %d disk hits; shed %d, rate-limited %d, expired %d; %d cached plans at exit",
		cst.Hits, cst.Misses, cst.Deduped, cst.DiskHits, adm.Shed, adm.RateLimited, adm.ExpiredInQueue, cst.Entries)
	if ss := svc.StoreStats(); ss != nil {
		log.Printf("plan store: %d entries, %d puts (%d failed), %d quarantined",
			ss.Entries, ss.Puts, ss.PutErrors, ss.Quarantined)
	}
	if fc := svc.FaultCounts(); fc != nil {
		log.Printf("injected faults: %v", fc)
	}
}
