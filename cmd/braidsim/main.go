// Command braidsim reproduces Figure 6: the braid simulation of the
// four benchmark applications on the tiled double-defect architecture
// under priority Policies 0-6, reporting the schedule-length to
// critical-path ratio (the paper's blue bars) and average mesh
// utilization (the red curve).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"surfcomm/internal/apps"
	"surfcomm/internal/braid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("braidsim: ")
	distance := flag.Int("d", 9, "surface code distance")
	seed := flag.Int64("seed", 1, "layout seed")
	only := flag.String("app", "", "run a single application (GSE, SQ, SHA-1, IM)")
	localT := flag.Bool("local-t", false, "ablation: magic states pre-delivered (T gates local)")
	verify := flag.Bool("verify", false, "record each static schedule and replay-validate it")
	flag.Parse()

	fmt.Printf("Figure 6: braid schedule / critical path and mesh utilization (d=%d)\n", *distance)
	if *localT {
		fmt.Println("ablation: magic-state traffic disabled")
	}
	fmt.Println(strings.Repeat("-", 84))
	fmt.Printf("%-8s %-10s %12s %12s %10s %10s %10s\n",
		"App", "Policy", "ratio", "util %", "braids", "adaptive", "reinject")

	for _, w := range apps.Fig6Suite() {
		if *only != "" && !strings.EqualFold(*only, w.Name) {
			continue
		}
		for _, p := range braid.AllPolicies {
			r, err := braid.Simulate(w.Circuit, p, braid.Config{
				Distance:       *distance,
				Seed:           *seed,
				LocalTOps:      *localT,
				RecordSchedule: *verify,
			})
			if err != nil {
				log.Fatalf("%s %v: %v", w.Name, p, err)
			}
			status := ""
			if *verify {
				if err := braid.Replay(w.Circuit, r.Arch, r.Schedule); err != nil {
					log.Fatalf("%s %v: replay validation failed: %v", w.Name, p, err)
				}
				status = fmt.Sprintf("  replay-ok (%d entries)", len(r.Schedule))
			}
			fmt.Printf("%-8s %-10s %12.2f %12.1f %10d %10d %10d%s\n",
				w.Name, p, r.Ratio, 100*r.AvgUtilization, r.BraidsPlaced, r.AdaptiveRoutes, r.Reinjections, status)
		}
		fmt.Println(strings.Repeat("-", 84))
	}
	fmt.Println("Paper: parallel apps (SHA-1, IM) start up to ~12x above the critical path and")
	fmt.Println("policies recover up to ~7x, while serial apps are near-critical-path throughout;")
	fmt.Println("utilization rises with policy sophistication (up to ~22%).")
}
