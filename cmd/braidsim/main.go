// Command braidsim reproduces Figure 6: the braid simulation of the
// four benchmark applications on the tiled double-defect architecture
// under priority Policies 0-6, reporting the schedule-length to
// critical-path ratio (the paper's blue bars) and average mesh
// utilization (the red curve).
//
// The grid runs on a surfcomm.Toolchain worker pool (-workers); output
// is byte-identical at any worker count. `-json FILE` emits the grid as
// machine-readable records (the BENCH_*.json convention), and an
// interrupt (Ctrl-C) cancels the run mid-grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"surfcomm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("braidsim: ")
	distance := flag.Int("d", 9, "surface code distance")
	seed := flag.Int64("seed", 1, "layout seed")
	only := flag.String("app", "", "run a single application (GSE, SQ, SHA-1, IM)")
	localT := flag.Bool("local-t", false, "ablation: magic states pre-delivered (T gates local)")
	verify := flag.Bool("verify", false, "record each static schedule and replay-validate it")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := flag.String("json", "", "write per-cell results to this JSON file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tc, err := surfcomm.NewToolchain(
		surfcomm.WithDistance(*distance),
		surfcomm.WithSeed(*seed),
		surfcomm.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}

	cells, err := tc.Figure6(ctx, surfcomm.SweepFigure6Options{
		LocalTOps:      *localT,
		RecordSchedule: *verify,
		App:            *only,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 6: braid schedule / critical path and mesh utilization (d=%d)\n", *distance)
	if *localT {
		fmt.Println("ablation: magic-state traffic disabled")
	}
	fmt.Println(strings.Repeat("-", 84))
	fmt.Printf("%-8s %-10s %12s %12s %10s %10s %10s\n",
		"App", "Policy", "ratio", "util %", "braids", "adaptive", "reinject")

	suite := map[string]*surfcomm.Circuit{}
	for _, w := range surfcomm.Fig6Suite() {
		suite[w.Name] = w.Circuit
	}
	lastApp := ""
	for _, c := range cells {
		if lastApp != "" && c.App != lastApp {
			fmt.Println(strings.Repeat("-", 84))
		}
		lastApp = c.App
		status := ""
		if *verify {
			if err := surfcomm.ReplayBraidSchedule(suite[c.App], c.Result.Arch, c.Result.Schedule); err != nil {
				log.Fatalf("%s Policy %d: replay validation failed: %v", c.App, c.Policy, err)
			}
			status = fmt.Sprintf("  replay-ok (%d entries)", len(c.Result.Schedule))
		}
		fmt.Printf("%-8s Policy %-3d %12.2f %12.1f %10d %10d %10d%s\n",
			c.App, c.Policy, c.Ratio, 100*c.Util, c.Braids, c.Adaptive, c.Reinjections, status)
	}
	if lastApp != "" {
		fmt.Println(strings.Repeat("-", 84))
	}
	fmt.Println("Paper: parallel apps (SHA-1, IM) start up to ~12x above the critical path and")
	fmt.Println("policies recover up to ~7x, while serial apps are near-critical-path throughout;")
	fmt.Println("utilization rises with policy sophistication (up to ~22%).")

	if *jsonPath != "" {
		records := surfcomm.SweepFigure6Records(tc.Seed(), cells)
		if err := surfcomm.WriteSweepRecordsFile(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d cells to %s", len(records), *jsonPath)
	}
}
