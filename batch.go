package surfcomm

import (
	"context"
	"fmt"

	"surfcomm/internal/scerr"
	"surfcomm/internal/sweep"
)

// CompileRequest is one unit of a batch compile: a circuit, the backend
// to lower it with, and an optional per-request target adjustment. The
// serving access pattern (many requests, few distinct circuit/target
// pairs — §7's fixed workload suite over varying targets) arrives as
// slices of these.
type CompileRequest struct {
	// Backend names the compiling backend ("braid", "planar",
	// "surgery"); empty selects "braid". Unknown names fail the request
	// with an error matching ErrBadConfig.
	Backend string
	// Circuit is the logical program to lower.
	Circuit *Circuit
	// Override optionally adjusts the toolchain's target for this
	// request only (a different distance, device, window…). It must not
	// retain the *Target past the call.
	Override func(*Target)
}

// CompileResult is one batch slot: the plan, or the error that failed
// this request. Exactly one of the two is meaningful — a successful
// result has a non-empty Plan.Backend and a nil Err.
type CompileResult struct {
	Plan Plan
	Err  error
}

// CompileBatch compiles every request across the WithWorkers pool and
// returns the results in request order — slot i always answers
// request i, at any worker count, and the plans are bit-identical to
// serial Compile calls (compiles derive all randomness from explicit
// seeds). Per-request failures land in their slot's Err and never
// abort the rest of the batch; a canceled context stops the pool and
// marks the unprocessed slots with errors matching ErrCanceled.
//
// Progress events are emitted with Stage "batch", one per completed
// request.
func (tc *Toolchain) CompileBatch(ctx context.Context, reqs []CompileRequest) []CompileResult {
	label := func(i int) string {
		name := reqs[i].Backend
		if name == "" {
			name = "braid"
		}
		circ := "<nil>"
		if reqs[i].Circuit != nil {
			circ = reqs[i].Circuit.Name
		}
		return fmt.Sprintf("%s/%s", name, circ)
	}
	return sweep.MapFill(ctx, tc.sweepOpts("batch", label), reqs,
		func(i int, req CompileRequest) CompileResult { return tc.compileOne(ctx, req) },
		func(err error) CompileResult { return CompileResult{Err: err} })
}

// compileOne resolves and compiles a single batch request.
func (tc *Toolchain) compileOne(ctx context.Context, req CompileRequest) CompileResult {
	name := req.Backend
	if name == "" {
		name = "braid"
	}
	b, err := BackendByName(name)
	if err != nil {
		return CompileResult{Err: err}
	}
	if req.Circuit == nil {
		return CompileResult{Err: scerr.BadConfig("batch: nil circuit")}
	}
	target := tc.Target()
	if req.Override != nil {
		req.Override(&target)
	}
	plan, err := b.Compile(ctx, req.Circuit, &target)
	if err != nil {
		return CompileResult{Err: fmt.Errorf("batch: %s/%s: %w", name, req.Circuit.Name, err)}
	}
	return CompileResult{Plan: plan}
}
