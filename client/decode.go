package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"surfcomm/internal/service"
)

// StreamError is an in-stream /decode failure: the server accepted the
// session (the HTTP status was long gone) and then reported an error
// line mid-stream — a malformed frame, an undecodable change volume, a
// server-side hangup.
type StreamError struct{ Msg string }

func (e *StreamError) Error() string { return "surfcommd: decode stream: " + e.Msg }

// DecodeSession is one live /decode stream. Send and Next may run
// concurrently (the protocol is full-duplex: with a window of w, every
// w-th Send has a result to read — a caller that never drains Next
// eventually blocks Send on the transport window). Close always; it is
// idempotent.
type DecodeSession struct {
	ack     service.DecodeAck
	pw      *io.PipeWriter
	enc     *json.Encoder
	resp    *http.Response
	dec     *json.Decoder
	summary *service.DecodeSummary
	closed  bool
}

// DecodeStream opens a streaming decode session. Unlike the one-shot
// endpoints there are no retries: a stream is stateful, so the caller
// decides whether to re-run a failed session. A non-200 acceptance
// (bad header 400, shed or chaos 503, rate limit 429) returns a
// *StatusError with Attempts=1.
func (c *Client) DecodeStream(ctx context.Context, start service.DecodeStart) (*DecodeSession, error) {
	header, err := json.Marshal(start)
	if err != nil {
		return nil, err
	}
	header = append(header, '\n')
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/decode",
		io.MultiReader(bytes.NewReader(header), pr))
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		pw.Close()
		return nil, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(body)), Attempts: 1}
	}
	dec := json.NewDecoder(resp.Body)
	var ack service.DecodeAck
	if err := dec.Decode(&ack); err != nil || !ack.OK {
		resp.Body.Close()
		pw.Close()
		if err == nil {
			err = &StreamError{Msg: "server ack not ok"}
		}
		return nil, fmt.Errorf("surfcommd: decode ack: %w", err)
	}
	return &DecodeSession{ack: ack, pw: pw, enc: json.NewEncoder(pw), resp: resp, dec: dec}, nil
}

// Ack returns the server's session acceptance (checks and qubits size
// the syndrome and correction bitmaps).
func (ds *DecodeSession) Ack() service.DecodeAck { return ds.ack }

// Send streams one measured syndrome round (length Ack().Checks).
func (ds *DecodeSession) Send(syndrome []bool) error {
	if len(syndrome) != ds.ack.Checks {
		return fmt.Errorf("surfcommd: syndrome length %d != %d checks", len(syndrome), ds.ack.Checks)
	}
	return ds.enc.Encode(service.DecodeFrame{Syndrome: service.PackBits(syndrome)})
}

// CloseSend ends the round stream: the server flushes any partial
// window and answers the summary line (read it with Next until io.EOF,
// then Summary).
func (ds *DecodeSession) CloseSend() error {
	if err := ds.enc.Encode(service.DecodeFrame{End: true}); err != nil {
		return err
	}
	return ds.pw.Close()
}

// Next returns the next decoded window. It returns io.EOF once the
// summary line has arrived (Summary then reports it), and a
// *StreamError when the server reported an in-stream failure.
func (ds *DecodeSession) Next() (*service.DecodeWindowResult, error) {
	if ds.summary != nil {
		return nil, io.EOF
	}
	var raw json.RawMessage
	if err := ds.dec.Decode(&raw); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &StreamError{Msg: "server hung up before the summary line"}
		}
		return nil, err
	}
	var probe struct {
		Done  bool   `json:"done"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, err
	}
	if probe.Error != "" {
		return nil, &StreamError{Msg: probe.Error}
	}
	if probe.Done {
		var sum service.DecodeSummary
		if err := json.Unmarshal(raw, &sum); err != nil {
			return nil, err
		}
		ds.summary = &sum
		return nil, io.EOF
	}
	var res service.DecodeWindowResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Correction unpacks a window result's correction bitmap (length
// Ack().Qubits).
func (ds *DecodeSession) Correction(res *service.DecodeWindowResult) ([]bool, error) {
	return service.UnpackBits(res.Correction, ds.ack.Qubits)
}

// Summary returns the end-of-stream summary; ok is false until Next
// has returned io.EOF.
func (ds *DecodeSession) Summary() (service.DecodeSummary, bool) {
	if ds.summary == nil {
		return service.DecodeSummary{}, false
	}
	return *ds.summary, true
}

// Close tears the session down (idempotent): an abandoned session —
// closed without CloseSend — surfaces server-side as a mid-stream
// disconnect and frees its worker slot.
func (ds *DecodeSession) Close() error {
	if ds.closed {
		return nil
	}
	ds.closed = true
	ds.pw.CloseWithError(errors.New("surfcommd: decode session closed"))
	return ds.resp.Body.Close()
}
