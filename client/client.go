// Package client is the Go client for the surfcommd compile service:
// a thin HTTP/JSON wrapper with the retry discipline the serving
// layer's overload contract expects. Shed requests (429 from the
// per-client rate limiter, 503 from admission control, shutdown, or
// injected chaos) are retried with context-aware exponential backoff
// plus jitter, honoring the server's Retry-After estimate when it is
// longer than the computed backoff; client errors (4xx other than 429)
// are never retried — a bad request does not get better with patience.
// A context deadline is forwarded to the server in the
// X-Request-Deadline header, so the service can shed the request on
// arrival (or abandon it in the queue) instead of compiling work the
// client has already given up on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"surfcomm/internal/service"
)

// Default retry tuning: four attempts spanning roughly 0.1–2s of
// backoff keeps transient sheds invisible to callers without turning a
// real outage into a hot loop.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
)

// Client talks to one surfcommd base URL. It is safe for concurrent
// use.
type Client struct {
	base        string
	hc          *http.Client
	apiKey      string
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithAPIKey sends the key in X-API-Key, which is also the server's
// rate-limit bucket key — one tenant shares one bucket across machines.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithRetry tunes the retry loop: total attempts (1 disables retries)
// and the base/cap of the exponential backoff.
func WithRetry(maxAttempts int, baseDelay, maxDelay time.Duration) Option {
	return func(c *Client) {
		if maxAttempts > 0 {
			c.maxAttempts = maxAttempts
		}
		if baseDelay > 0 {
			c.baseDelay = baseDelay
		}
		if maxDelay > 0 {
			c.maxDelay = maxDelay
		}
	}
}

// WithJitterSeed seeds the backoff jitter (tests pin schedules with
// it; production keeps the default time-seeded source).
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8723").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          http.DefaultClient,
		maxAttempts: DefaultMaxAttempts,
		baseDelay:   DefaultBaseDelay,
		maxDelay:    DefaultMaxDelay,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// StatusError is a non-2xx reply that exhausted (or was exempt from)
// retries.
type StatusError struct {
	// Code is the final HTTP status; Body is the server's error text.
	Code int
	Body string
	// RetryAfter is the server's Retry-After estimate (zero when the
	// reply carried none).
	RetryAfter time.Duration
	// Attempts is how many requests were sent before giving up.
	Attempts int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("surfcommd: HTTP %d after %d attempt(s): %s", e.Code, e.Attempts, e.Body)
}

// IsRetryable reports whether a status is worth retrying: 429 (rate
// limited) and 503 (shed, draining, or chaos) are explicit
// try-again-later signals; everything else is final.
func IsRetryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Compile submits one request, retrying sheds.
func (c *Client) Compile(ctx context.Context, req service.Request) (service.CompileResponse, error) {
	var out service.CompileResponse
	err := c.do(ctx, http.MethodPost, "/compile", req, &out)
	return out, err
}

// CompileBatch submits a batch; per-slot failures come back in the
// slots, transport-level sheds are retried whole (identical slots
// dedupe server-side, so a retried batch recompiles nothing that
// already landed in the cache).
func (c *Client) CompileBatch(ctx context.Context, reqs []service.Request) ([]service.CompileResponse, error) {
	var out []service.CompileResponse
	err := c.do(ctx, http.MethodPost, "/batch", reqs, &out)
	return out, err
}

// Estimate runs the frontend characterization for a QASM circuit.
func (c *Client) Estimate(ctx context.Context, qasm string) (service.EstimateResponse, error) {
	var out service.EstimateResponse
	err := c.do(ctx, http.MethodPost, "/estimate", service.Request{QASM: qasm}, &out)
	return out, err
}

// Models fetches the characterized reference application suite.
func (c *Client) Models(ctx context.Context) ([]service.ModelResponse, error) {
	var out []service.ModelResponse
	err := c.do(ctx, http.MethodGet, "/models", nil, &out)
	return out, err
}

// Health fetches the liveness + counters snapshot.
func (c *Client) Health(ctx context.Context) (service.HealthResponse, error) {
	var out service.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Ready probes /readyz once (no retries — readiness is a point-in-time
// routing question): nil when the server wants traffic, a StatusError
// carrying the reason when draining or overloaded.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(body)), Attempts: 1}
	}
	return nil
}

// do runs the retry loop: send, classify, back off, repeat. The
// context bounds the whole exchange including backoff sleeps.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (context ended: %v)", lastErr, err)
			}
			return err
		}
		serr, body, err := c.send(ctx, method, path, payload, attempt)
		switch {
		case err != nil:
			// Transport-level failure (connection refused mid-restart,
			// reset under load): retryable.
			lastErr = err
		case serr == nil:
			if out == nil {
				return nil
			}
			return json.Unmarshal(body, out)
		default:
			lastErr = serr
			if !IsRetryable(serr.Code) {
				return lastErr
			}
		}
		if attempt >= c.maxAttempts {
			return lastErr
		}
		delay := c.backoff(attempt)
		var se *StatusError
		if errors.As(lastErr, &se) && se.RetryAfter > delay {
			delay = se.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("%w (context ended during backoff: %v)", lastErr, ctx.Err())
		}
	}
}

// send performs one HTTP exchange, forwarding the API key and the
// remaining context budget as X-Request-Deadline. A 2xx returns
// (nil, body, nil); a non-2xx returns the StatusError (with the
// server's Retry-After parsed in); transport failures return err.
func (c *Client) send(ctx context.Context, method, path string, payload []byte, attempt int) (*StatusError, []byte, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			req.Header.Set(service.DeadlineHeader, remain.Round(time.Millisecond).String())
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, service.MaxBodyBytes))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil, data, nil
	}
	serr := &StatusError{
		Code:     resp.StatusCode,
		Body:     strings.TrimSpace(string(data)),
		Attempts: attempt,
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		serr.RetryAfter = parseRetryAfter(ra, time.Now())
	}
	return serr, nil, nil
}

// parseRetryAfter reads both RFC 7231 Retry-After forms: delta-seconds
// ("3") and HTTP-date ("Fri, 08 Aug 2026 17:30:00 GMT" — what real
// proxies and CDNs in front of the fleet rewrite the header to).
// Unparseable values and dates already in the past yield zero, which
// the retry loop treats as "no server hint".
func parseRetryAfter(ra string, now time.Time) time.Duration {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if t, err := http.ParseTime(ra); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the attempt's exponential delay with full jitter in
// [delay/2, delay): herds that shed together must not retry together.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay << (attempt - 1)
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}
