package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"surfcomm/client"
	"surfcomm/internal/service"
)

// scriptedServer replies with the scripted status codes in order (the
// last repeats forever) and records each request's headers.
type scriptedServer struct {
	mu      sync.Mutex
	script  []int
	calls   int
	headers []http.Header
}

func (s *scriptedServer) handler(t *testing.T) http.HandlerFunc {
	t.Helper()
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		idx := s.calls
		s.calls++
		s.headers = append(s.headers, r.Header.Clone())
		if idx >= len(s.script) {
			idx = len(s.script) - 1
		}
		code := s.script[idx]
		s.mu.Unlock()
		if code == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"plan":{"backend":"braid","cycles":42},"cached":false,"digest":"abc"}`))
			return
		}
		if client.IsRetryable(code) {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, http.StatusText(code), code)
	}
}

func (s *scriptedServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// fastRetry keeps test backoff in the milliseconds.
func fastRetry(attempts int) client.Option {
	return client.WithRetry(attempts, 2*time.Millisecond, 10*time.Millisecond)
}

func TestRetriesShedsThenSucceeds(t *testing.T) {
	ss := &scriptedServer{script: []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusOK}}
	srv := httptest.NewServer(ss.handler(t))
	defer srv.Close()

	c := client.New(srv.URL, fastRetry(4), client.WithJitterSeed(1))
	resp, err := c.Compile(context.Background(), service.Request{QASM: "OPENQASM 2.0;"})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if resp.Plan == nil || resp.Plan.Backend != "braid" || resp.Plan.Cycles != 42 {
		t.Fatalf("resp = %+v, want plan braid/42", resp)
	}
	if got := ss.count(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two sheds + success)", got)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var gap time.Duration
	var last time.Time
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		now := time.Now()
		if calls == 2 {
			gap = now.Sub(last)
		}
		last = now
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"plan":{"backend":"braid","cycles":1}}`))
	}))
	defer srv.Close()

	// Backoff alone would retry within ~10ms; Retry-After: 1 must
	// stretch the wait to at least a second.
	c := client.New(srv.URL, fastRetry(3), client.WithJitterSeed(1))
	if _, err := c.Compile(context.Background(), service.Request{QASM: "x"}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gap < time.Second {
		t.Fatalf("retry gap %v, want >= 1s from Retry-After", gap)
	}
}

func TestClientErrorNotRetried(t *testing.T) {
	ss := &scriptedServer{script: []int{http.StatusBadRequest}}
	srv := httptest.NewServer(ss.handler(t))
	defer srv.Close()

	c := client.New(srv.URL, fastRetry(5), client.WithJitterSeed(1))
	_, err := c.Compile(context.Background(), service.Request{QASM: ""})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := ss.count(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (400 is final)", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	ss := &scriptedServer{script: []int{http.StatusServiceUnavailable}}
	srv := httptest.NewServer(ss.handler(t))
	defer srv.Close()

	c := client.New(srv.URL, fastRetry(3), client.WithJitterSeed(1))
	_, err := c.Compile(context.Background(), service.Request{QASM: "x"})
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.Code != http.StatusServiceUnavailable || se.Attempts != 3 {
		t.Fatalf("final error %+v, want 503 after 3 attempts", se)
	}
	if se.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want the server's 1s carried through", se.RetryAfter)
	}
	if got := ss.count(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestSendsAPIKeyAndDeadlineHeaders(t *testing.T) {
	ss := &scriptedServer{script: []int{http.StatusOK}}
	srv := httptest.NewServer(ss.handler(t))
	defer srv.Close()

	c := client.New(srv.URL, fastRetry(1), client.WithAPIKey("tenant-a"), client.WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Compile(ctx, service.Request{QASM: "x"}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ss.mu.Lock()
	h := ss.headers[0]
	ss.mu.Unlock()
	if got := h.Get("X-API-Key"); got != "tenant-a" {
		t.Fatalf("X-API-Key = %q, want tenant-a", got)
	}
	dh := h.Get(service.DeadlineHeader)
	if dh == "" {
		t.Fatal("no X-Request-Deadline header despite context deadline")
	}
	d, err := time.ParseDuration(dh)
	if err != nil || d <= 0 || d > 30*time.Second {
		t.Fatalf("deadline header %q (parsed %v, err %v), want a duration within the 30s budget", dh, d, err)
	}
}

func TestContextCancelEndsRetries(t *testing.T) {
	ss := &scriptedServer{script: []int{http.StatusServiceUnavailable}}
	srv := httptest.NewServer(ss.handler(t))
	defer srv.Close()

	// Retry-After of 1s per attempt against a 50ms context: the loop
	// must give up during the first backoff, not sleep through it.
	c := client.New(srv.URL, client.WithRetry(10, time.Millisecond, time.Millisecond), client.WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compile(ctx, service.Request{QASM: "x"})
	if err == nil {
		t.Fatal("Compile succeeded, want context-bounded failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past a 50ms context", elapsed)
	}
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want the last StatusError wrapped", err)
	}
}

func TestReadyReportsDrain(t *testing.T) {
	draining := false
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		d := draining
		mu.Unlock()
		if d {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.WithJitterSeed(1))
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready while serving: %v", err)
	}
	mu.Lock()
	draining = true
	mu.Unlock()
	err := c.Ready(context.Background())
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("Ready while draining = %v, want StatusError 503", err)
	}
}

func TestTransportErrorRetriedThenFails(t *testing.T) {
	// A server that is already closed: every attempt is a connection
	// error, all retryable, until attempts run out.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	c := client.New(url, fastRetry(2), client.WithJitterSeed(1))
	_, err := c.Compile(context.Background(), service.Request{QASM: "x"})
	if err == nil {
		t.Fatal("Compile against closed server succeeded")
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		t.Fatalf("err = %v, want a transport error, not a StatusError", err)
	}
}
