package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"surfcomm/client"
	"surfcomm/internal/service"
)

func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		ra   string
		want time.Duration
	}{
		{"delta seconds", "3", 3 * time.Second},
		{"zero delta", "0", 0},
		{"negative delta", "-5", 0},
		{"http date future", now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second},
		{"http date past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
		{"rfc850 date", now.Add(30 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"garbage", "soon", 0},
		{"empty", "", 0},
	}
	for _, tc := range cases {
		if got := client.ParseRetryAfter(tc.ra, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.ra, got, tc.want)
		}
	}
}

// TestHonorsRetryAfterDate pins the satellite fix: a date-form
// Retry-After (what real proxies and CDNs rewrite the header to) must
// stretch the backoff exactly like the delta-seconds form instead of
// being silently dropped.
func TestHonorsRetryAfterDate(t *testing.T) {
	var mu sync.Mutex
	var last time.Time
	var gap time.Duration
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		now := time.Now()
		if calls == 2 {
			gap = now.Sub(last)
		}
		last = now
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", time.Now().Add(1500*time.Millisecond).UTC().Format(http.TimeFormat))
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"plan":{"backend":"braid","cycles":1}}`))
	}))
	defer srv.Close()

	// Backoff alone would retry within ~10ms; the date a second and a
	// half out must hold the retry back (HTTP dates have one-second
	// granularity, so allow for truncation).
	c := client.New(srv.URL, fastRetry(3), client.WithJitterSeed(1))
	if _, err := c.Compile(context.Background(), service.Request{QASM: "x"}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gap < 500*time.Millisecond {
		t.Fatalf("retry gap %v, want >= 500ms from the date-form Retry-After", gap)
	}
}
