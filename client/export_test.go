package client

// ParseRetryAfter exposes the Retry-After parser to the external test
// package.
var ParseRetryAfter = parseRetryAfter
