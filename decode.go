package surfcomm

// Streaming decode facade: strategy selection by name, the windowed
// streaming decoder the /decode service wraps, and the records behind
// the committed BENCH_decode.json artifact.

import (
	"surfcomm/internal/decoder"

	// Importing the union-find subsystem registers its strategy, so
	// every layer built on the facade (cmd/sweep, internal/service,
	// cmd/surfcommd, client programs) can resolve "unionfind" by name.
	_ "surfcomm/internal/ufdecoder"

	"surfcomm/internal/sweep"
)

// Decoding strategy names accepted by WithDecoderStrategy,
// NewStreamDecoder, and the service /decode endpoint.
const (
	DecoderStrategyMWPM      = decoder.StrategyMWPM
	DecoderStrategyUnionFind = decoder.StrategyUnionFind
)

// DecoderStrategies lists the registered decoding strategy names,
// sorted.
func DecoderStrategies() []string { return decoder.StrategyNames() }

// StreamDecoder is the streaming face of the space-time decoder: push
// syndrome rounds as they are measured; every `window` rounds the
// accumulated change volume decodes as one space-time batch. Not safe
// for concurrent use — each streaming session owns one.
type StreamDecoder = decoder.WindowDecoder

// NewStreamDecoder builds a streaming decoder on a distance-d lattice
// decoding every `window` rounds under the named strategy ("" selects
// MWPM). Unknown strategies surface ErrBadConfig.
func NewStreamDecoder(d, window int, strategy string) (*StreamDecoder, error) {
	l, err := decoder.NewLattice(d)
	if err != nil {
		return nil, err
	}
	s, err := decoder.StrategyByName(strategy)
	if err != nil {
		return nil, err
	}
	return decoder.NewWindowDecoder(l, window, s)
}

// SweepDecodeBenchRecords converts a strategy-comparison grid to the
// BENCH_decode.json cell records: every cell names its strategy and
// carries the deterministic work-op count the crossover analysis
// compares.
func SweepDecodeBenchRecords(study string, cells []SweepDecoderCell) []SweepCellResult {
	return sweep.DecodeBenchRecords(study, cells)
}
